"""Simulated Motorola 68000-style target (big-endian, 32-bit).

This sixth architecture is NOT one of the paper's five: it exists to
demonstrate the paper's generality claim -- the discovery unit handles
it without modification.  It contributes fresh diversity: ``|``
comments, ``#`` immediates, dotted mnemonics (``move.l``), two-address
arithmetic with the destination last, data/address register files with
bare names (``d0``/``a6``), ``link``/``unlk`` stack frames, and shift
instructions whose immediate count is restricted to [1, 8].

Simplifications vs. real hardware: ``divs.l`` is a plain 32-bit divide
(no 64-bit dividend or condition-code subtleties) and there is no
remainder instruction (the compiler expands ``%``), no pre-decrement
addressing (pushes are an explicit ``sub.l``/``move.l`` pair).
"""

from __future__ import annotations

import re

from repro import wordops
from repro.errors import ExecutionError
from repro.machines.executor import effaddr, read, write
from repro.machines.isa import Abi, InstrDef, InstrForm, Isa, RegisterDef, SyntaxDef
from repro.machines.operands import Bare, Imm, Mem, Reg, Sym

WORD = 32

REGISTER_NAMES = tuple(f"d{n}" for n in range(8)) + tuple(f"a{n}" for n in range(8)) + (
    "fp",
    "sp",
)

_MEM_RE = re.compile(r"^(-?\w*)\((\w+)\)$")
_ID_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")

DATA_REGS = {f"d{n}" for n in range(8)}


class M68kSyntax(SyntaxDef):
    comment_char = "|"
    literal_bases = {"": 10, "0x": 16}

    def parse_operand(self, text):
        text = text.strip()
        if not text:
            raise ValueError("empty operand")
        if text in REGISTER_NAMES:
            return Reg(text)
        if text.startswith("#"):
            body = text[1:]
            value = self.parse_int(body)
            if value is not None:
                return Imm(value)
            if _ID_RE.match(body):
                return Imm(Sym(body))
            raise ValueError(f"malformed immediate {text!r}")
        match = _MEM_RE.match(text)
        if match:
            disp_text, base = match.group(1), match.group(2)
            if base not in REGISTER_NAMES:
                raise ValueError(f"unknown base register {base!r}")
            disp = 0 if disp_text == "" else self.parse_int(disp_text)
            if disp is None:
                raise ValueError(f"malformed displacement in {text!r}")
            return Mem(disp, base)
        value = self.parse_int(text)
        if value is not None:
            return Mem(value, None)  # absolute address
        if _ID_RE.match(text):
            return Bare(text)
        raise ValueError(f"malformed operand {text!r}")

    def render_operand(self, op):
        if isinstance(op, Reg):
            return op.name
        if isinstance(op, Imm):
            return f"#{op.value}" if isinstance(op.value, int) else f"#{op.value.name}"
        if isinstance(op, Mem):
            disp = op.disp if isinstance(op.disp, int) else op.disp.name
            if op.base is None:
                return str(disp)
            return f"{disp}({op.base})"
        return str(getattr(op, "target", getattr(op, "name", op)))


def _move(state, ops):
    write(state, ops[1], read(state, ops[0]))


def _move_byte(state, ops):
    # move.b writes only the low byte of a data register.
    byte = state.mem.load(effaddr(state, ops[0]), 1)
    old = read(state, ops[1])
    write(state, ops[1], (old & ~0xFF) | byte)


def _clr(state, ops):
    write(state, ops[0], 0)


def _arith(fn, check_zero=False, dreg_dst=False):
    def execute(state, ops):
        src = read(state, ops[0])
        dst = read(state, ops[1])
        if check_zero and wordops.mask(src, WORD) == 0:
            raise ExecutionError("division by zero")
        write(state, ops[1], fn(dst, src, WORD))

    return execute


def _shift(fn):
    def execute(state, ops):
        count = read(state, ops[0]) % 64  # the 68000 takes counts mod 64
        dst = read(state, ops[1])
        write(state, ops[1], fn(dst, count, WORD))

    return execute


def _neg(state, ops):
    write(state, ops[0], wordops.neg(read(state, ops[0]), WORD))


def _not(state, ops):
    write(state, ops[0], wordops.bit_not(read(state, ops[0]), WORD))


def _tst(state, ops):
    state.compare_signed(read(state, ops[0]), 0)


def _cmp(state, ops):
    # cmp.l src, dst sets condition codes from dst - src.
    state.compare_signed(read(state, ops[1]), read(state, ops[0]))


def _branch(cond):
    def execute(state, ops):
        if cond(state.cc):
            state.branch(read(state, ops[0]))

    return execute


def _bra(state, ops):
    state.branch(read(state, ops[0]))


def _jsr(state, ops):
    sp = state.get_reg("sp") - 4
    state.set_reg("sp", sp)
    state.mem.store(sp, state.pc, 4)
    state.branch(read(state, ops[0]))


def _rts(state, ops):
    sp = state.get_reg("sp")
    target = state.mem.load(sp, 4)
    state.set_reg("sp", sp + 4)
    state.branch(wordops.to_signed(target, WORD))


def _link(state, ops):
    # link An, #disp: push An; An := sp; sp := sp + disp (disp < 0).
    reg = ops[0].name
    sp = state.get_reg("sp") - 4
    state.mem.store(sp, state.get_reg(reg), 4)
    state.set_reg(reg, sp)
    state.set_reg("sp", wordops.add(sp, read(state, ops[1]), WORD))


def _unlk(state, ops):
    reg = ops[0].name
    frame = state.get_reg(reg)
    state.set_reg(reg, state.mem.load(frame, 4))
    state.set_reg("sp", frame + 4)


def _nop(state, ops):
    pass


class M68kAbi(Abi):
    stack_pointer = "sp"

    def get_arg(self, state, index):
        sp = state.get_reg("sp")
        return state.mem.load(sp + 4 + 4 * index, 4)

    def set_retval(self, state, value):
        state.set_reg("d0", value)

    def do_return(self, state):
        _rts(state, [])

    def setup_entry(self, state, entry_index, halt_index):
        sp = state.get_reg("sp") - 4
        state.set_reg("sp", sp)
        state.mem.store(sp, wordops.mask(halt_index, WORD), 4)
        state.pc = entry_index


SHIFT_IMM = (1, 8)
RM = "rm"
SRC = "rim"


def build_isa():
    registers = [RegisterDef(f"d{n}", klass="data") for n in range(8)]
    registers += [RegisterDef(f"a{n}", klass="addr") for n in range(6)]
    registers.append(RegisterDef("a6", aliases=("fp",), klass="addr", allocatable=False))
    registers.append(RegisterDef("a7", aliases=("sp",), klass="addr", allocatable=False))

    instructions = {}

    def define(mnemonic, *forms):
        instructions[mnemonic] = InstrDef(mnemonic, list(forms))

    define("move.l", InstrForm((SRC, RM), _move))
    define("move.b", InstrForm(("m", "r"), _move_byte, reg_constraints={1: DATA_REGS}))
    define("clr.l", InstrForm((RM,), _clr))
    for mnemonic, fn, zero in [
        ("add.l", wordops.add, False),
        ("sub.l", wordops.sub, False),
        ("and.l", wordops.band, False),
        ("or.l", wordops.bor, False),
        ("eor.l", wordops.bxor, False),
    ]:
        define(mnemonic, InstrForm((SRC, RM), _arith(fn, check_zero=zero)))
    define(
        "muls.l",
        InstrForm((SRC, "r"), _arith(wordops.mul), reg_constraints={1: DATA_REGS}),
    )
    define(
        "divs.l",
        InstrForm(
            (SRC, "r"),
            _arith(wordops.sdiv, check_zero=True),
            reg_constraints={1: DATA_REGS},
        ),
    )
    for mnemonic, fn in [
        ("lsl.l", wordops.shl),
        ("asr.l", wordops.shr_arith),
        ("lsr.l", wordops.shr_logical),
    ]:
        define(
            mnemonic,
            InstrForm(
                ("i", "r"),
                _shift(fn),
                imm_ranges={0: SHIFT_IMM},
                reg_constraints={1: DATA_REGS},
            ),
            InstrForm(
                ("r", "r"),
                _shift(fn),
                reg_constraints={0: DATA_REGS, 1: DATA_REGS},
            ),
        )
    define("neg.l", InstrForm((RM,), _neg))
    define("not.l", InstrForm((RM,), _not))
    define("tst.l", InstrForm((SRC,), _tst))
    define("cmp.l", InstrForm((SRC, "r"), _cmp))
    define("beq", InstrForm(("l",), _branch(lambda cc: cc["eq"])))
    define("bne", InstrForm(("l",), _branch(lambda cc: not cc["eq"])))
    define("blt", InstrForm(("l",), _branch(lambda cc: cc["lt"])))
    define("ble", InstrForm(("l",), _branch(lambda cc: cc["lt"] or cc["eq"])))
    define("bgt", InstrForm(("l",), _branch(lambda cc: cc["gt"])))
    define("bge", InstrForm(("l",), _branch(lambda cc: cc["gt"] or cc["eq"])))
    define("bra", InstrForm(("l",), _bra))
    define("jsr", InstrForm(("l",), _jsr))
    define("rts", InstrForm((), _rts))
    define("link", InstrForm(("r", "i"), _link))
    define("unlk", InstrForm(("r",), _unlk))
    define("nop", InstrForm((), _nop))

    return Isa(
        name="m68k",
        word_bits=WORD,
        endian="big",
        registers=registers,
        instructions=instructions,
        syntax=M68kSyntax(),
        abi=M68kAbi(),
        int_size=4,
        pointer_size=4,
        call_mnemonics=("jsr",),
    )
