"""The Lexer's extraction half: find and tokenize the relevant region.

Paper Figure 3: the sample statement sits between two labels (`Begin`
and `End`), each referenced at least three times thanks to the
conditional-goto maze, which also stops an optimizer from removing them.
"These labels will be easy to identify since they each must be
referenced at least three times."
"""

from __future__ import annotations

from repro.discovery.asmmodel import DInstr, split_lines
from repro.errors import DiscoveryError


def find_delimiters(asm_text, comment_char):
    """Return (begin_label, end_label): the two labels referenced at
    least three times, in definition order."""
    defined = {}  # label -> definition line index (in raw text lines)
    references = {}
    raw_lines = asm_text.splitlines()
    for index, raw in enumerate(raw_lines):
        parsed = split_lines(raw, comment_char)
        if not parsed:
            continue
        line = parsed[0]
        for label in line.labels:
            defined.setdefault(label, index)
    label_names = set(defined)
    for raw in raw_lines:
        parsed = split_lines(raw, comment_char)
        if not parsed:
            continue
        line = parsed[0]
        if line.mnemonic is None or line.is_directive:
            continue
        for token in line.operand_texts:
            if token in label_names:
                references[token] = references.get(token, 0) + 1
    hot = sorted(
        (label for label, count in references.items() if count >= 3),
        key=lambda label: defined[label],
    )
    if len(hot) != 2:
        raise DiscoveryError(
            f"expected exactly 2 heavily-referenced labels, found {hot!r}"
        )
    return hot[0], hot[1]


def extract_region(sample, syntax):
    """Split the sample's assembly into (pre_lines, region, post_lines)
    and tokenize the region instructions; fills the sample in place."""
    begin, end = find_delimiters(sample.asm_text, syntax.comment_char)
    raw_lines = sample.asm_text.splitlines()

    def def_line(label):
        for index, raw in enumerate(raw_lines):
            parsed = split_lines(raw, syntax.comment_char)
            if parsed and label in parsed[0].labels:
                return index
        raise DiscoveryError(f"label {label!r} vanished")

    begin_index = def_line(begin)
    end_index = def_line(end)
    if end_index <= begin_index:
        raise DiscoveryError("End label precedes Begin label")

    sample.pre_lines = raw_lines[: begin_index + 1]
    sample.post_lines = raw_lines[end_index:]
    sample.region = tokenize_region(
        raw_lines[begin_index + 1 : end_index], syntax
    )
    sample.notes.append(f"delimiters: {begin}..{end}")
    return sample


def tokenize_region(raw_lines, syntax):
    """Tokenize assembly lines into :class:`DInstr` records."""
    instrs = []
    pending_labels = []
    for raw in raw_lines:
        for line in split_lines(raw, syntax.comment_char):
            pending_labels.extend(line.labels)
            if line.mnemonic is None:
                continue
            if line.is_directive:
                # Directives inside a region are kept as opaque zero-cost
                # instructions so they survive re-rendering.
                instrs.append(
                    DInstr(line.mnemonic, [], labels=pending_labels, raw=raw)
                )
                pending_labels = []
                continue
            operands = [syntax.classify(token) for token in line.operand_texts]
            instrs.append(
                DInstr(line.mnemonic, operands, labels=pending_labels, raw=raw)
            )
            pending_labels = []
    if pending_labels:
        # Trailing labels: attach to a synthetic no-op so they re-render.
        instrs.append(DInstr("", [], labels=pending_labels))
    return instrs
