"""E12 (paper Figures 12/13): reverse interpretation.

The worked example: given the semantics of the loads, the store and the
addressing mode, the reverse interpreter fixes ``mul`` so the MIPS
sample evaluates to 34117 -- and the likelihood guidance finds most
interpretations "after just one or two tries".
"""

import pytest

from repro import wordops
from repro.discovery.reverse_interp import (
    check_sample,
    interpret_region,
    opkey,
)
from tests.discovery.conftest import discovery_report, sample_named


class TestDiscoveredSemantics:
    """The semantic ground truth per target (what the Extractor should
    find for the canonical instructions)."""

    def _effects(self, report, fragment):
        for key, op_sem in report.extraction.semantics.items():
            if key.startswith(fragment):
                return op_sem
        raise LookupError(fragment)

    @pytest.mark.parametrize(
        "target,fragment,rendered",
        [
            ("mips", "mul(r,r,r)", "arg0 <- mul(arg1, arg2)"),
            ("mips", "lw(", "arg0 <- arg1"),
            ("mips", "sw(", "M[arg1] <- arg0"),
            ("x86", "imull(", "arg1 <- mul(arg1, arg0)"),
            ("x86", "movl(i,r)", "arg1 <- arg0"),
            ("alpha", "mull(", "arg2 <- mul(arg0, arg1)"),
            ("vax", "mull3(m", "M[arg2] <- mul(arg0, arg1)"),
            ("sparc", "call(s,i)@.mul", "%o0 <- mul(%o0, %o1)"),
            ("sparc", "call(s,i)@.div", "%o0 <- div(%o0, %o1)"),
            ("sparc", "call(s,i)@.rem", "%o0 <- mod(%o0, %o1)"),
        ],
    )
    def test_key_semantics(self, target, fragment, rendered):
        report = discovery_report(target)
        op_sem = self._effects(report, fragment)
        assert rendered in op_sem.render()

    def test_x86_idivl_two_outputs(self, x86_report):
        op_sem = self._effects(x86_report, "idivl(")
        text = op_sem.render()
        assert "%eax <- div(%eax, arg0)" in text
        assert "%edx <- mod(%eax, arg0)" in text

    def test_vax_subl3_operand_reversal(self, vax_report):
        """subl3 sub, min, dif computes dif = min - sub: the operand
        roles are reversed relative to the syntax order."""
        op_sem = self._effects(vax_report, "subl3(m")
        assert "M[arg2] <- sub(arg1, arg0)" in op_sem.render()

    def test_most_interpretations_found_in_a_few_tries(self, report):
        """Paper 5.2.2: "often the reverse interpreter will come up with
        the correct semantic interpretation after just one or two
        tries"."""
        tries = [op.tries for op in report.extraction.semantics.values() if op.tries]
        assert tries
        within_two = sum(1 for t in tries if t <= 2)
        # RISC loads/stores/ALU land in 1-2 tries; CISC memory-to-memory
        # signatures take a few dozen.  EXPERIMENTS.md reports the full
        # distributions.
        assert within_two / len(tries) >= 0.2
        import statistics

        assert statistics.median(tries) <= 15
        assert max(tries) <= 3000

    def test_nearly_all_samples_explained(self, report):
        solved = set(report.extraction.solved)
        failed = set(report.extraction.failed)
        assert len(solved) >= 100
        assert len(failed) <= 4


class TestInterpretationMachinery:
    def test_interpret_region_reproduces_sample_output(self, report):
        sem = report.extraction.effects_map()
        sample = sample_named(report, "int_mul_a_bOPc")
        bits = report.enquire.word_bits
        state = interpret_region(sample, sem, report.addr_map, bits)
        expected = wordops.mask(int(sample.expected_output.strip()), bits)
        assert state.mem[("var", "a")] == expected

    def test_check_sample_rejects_wrong_semantics(self, mips_report):
        sem = dict(mips_report.extraction.effects_map())
        sample = sample_named(mips_report, "int_mul_a_bOPc")
        mul_key = next(k for k in sem if k.startswith("mul("))
        sem[mul_key] = ((("op", 0), ("add", ("val", 1), ("val", 2))),)
        assert not check_sample(sample, sem, mips_report.addr_map, 32)

    def test_check_sample_accepts_the_committed_semantics(self, report):
        sem = report.extraction.effects_map()
        bits = report.enquire.word_bits
        checked = 0
        for sample in report.corpus.usable_samples():
            if sample.kind not in ("binary", "unary", "literal", "copy"):
                continue
            if not all(opkey(i) in sem for i in sample.region if i.mnemonic):
                continue
            assert check_sample(sample, sem, report.addr_map, bits), sample.name
            checked += 1
        assert checked >= 80

    def test_registers_start_symbolic(self, mips_report):
        from repro.discovery.reverse_interp import Addr, MachineState

        state = MachineState(mips_report.addr_map, {"a": 1, "b": 2, "c": 3}, 32)
        value = state.reg("$9")
        assert isinstance(value, Addr)
        assert value.base == "$90"

    def test_vax_ash_limitation_reproduced(self, vax_report):
        """Section 5.2.3: "we currently cannot analyze instructions like
        the VAX's arithmetic shift (ash)" -- the same signature needs
        both shift directions, so one right-shift-by-constant sample is
        discarded."""
        discarded = [
            s.name
            for s in vax_report.corpus.samples
            if s.discarded and "shr" in s.name and "OPK" in s.name
        ]
        assert discarded  # at least one ash casualty
