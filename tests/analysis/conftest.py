"""Analysis-test fixtures.

Discovery reports are shared with the discovery tests through the
session cache in ``tests.discovery.conftest``; anything that mutates a
spec must deepcopy it first (see ``corrupt_spec``).
"""

import copy

import pytest

from tests.discovery.conftest import TARGETS, discovery_report


@pytest.fixture(params=TARGETS, scope="session")
def report(request):
    return discovery_report(request.param)


def corrupt_spec(target):
    """A private, freely mutable copy of a target's discovered spec."""
    return copy.deepcopy(discovery_report(target).spec)
