"""MIPS code generator.

Produces the shapes of paper Figures 2 and 10(a): ``lw``/``sw`` against
``disp($sp)`` slots and three-operand arithmetic allocating a fresh
destination register (``mul $11, $9, $10``).  Compare-and-branch is one
instruction, the paper's example of a direct ``BranchEQ`` mapping.
"""

from __future__ import annotations

from repro.cc.codegen.base import CodeGen
from repro.cc.sema import SizeModel
from repro.errors import CompilerError

_ARITH = {
    "+": "addu",
    "-": "subu",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "sll",
    ">>": "sra",
}
_IMM_OPS = {"+": "addiu", "&": "andi", "|": "ori", "^": "xori"}
_SHIFT_OPS = ("<<", ">>")
_BFALSE = {"<": "bge", "<=": "bgt", ">": "ble", ">=": "blt", "==": "bne", "!=": "beq"}


class MipsCodeGen(CodeGen):
    name = "mips"
    comment = "#"
    reg_pool = ("$9", "$10", "$11", "$12", "$13", "$14", "$15", "$8")
    word_directive = ".long"
    word_align = 4
    sizes = SizeModel(int_size=4, char_size=1, pointer_size=4)

    # -- frame ----------------------------------------------------------

    def assign_frame(self, finfo):
        slots = len(finfo.params) + len(finfo.locals) + self.TEMP_SLOTS
        frame = 8 + 4 * slots
        frame = (frame + 7) // 8 * 8
        self._frame_size = frame
        offset = frame - 8
        for sym in finfo.params + finfo.locals:
            sym.storage = offset
            offset -= 4
        self._temp_base = offset

    def emit_prologue(self, finfo):
        self.emit(f"addiu $sp, $sp, -{self._frame_size}")
        self.emit(f"sw $31, {self._frame_size - 4}($sp)")
        for i, sym in enumerate(finfo.params):
            if i >= 4:
                raise CompilerError("more than 4 parameters are unsupported")
            self.emit(f"sw ${4 + i}, {sym.storage}($sp)")

    def emit_epilogue(self, finfo):
        self.emit(f"lw $31, {self._frame_size - 4}($sp)")
        self.emit(f"addiu $sp, $sp, {self._frame_size}")
        self.emit("jr $31")

    def _slot(self, sym):
        if sym.kind == "global":
            return sym.name
        return f"{sym.storage}($sp)"

    def _temp_slot(self, slot):
        return f"{self._temp_base - 4 * slot}($sp)"

    # -- loads/stores -----------------------------------------------------

    def emit_load_imm(self, value):
        reg = self.alloc_reg()
        self.emit(f"li {reg}, {value}")
        return reg

    def emit_load_sym(self, sym):
        reg = self.alloc_reg()
        self.emit(f"lw {reg}, {self._slot(sym)}")
        return reg

    def emit_store_sym(self, sym, reg):
        self.emit(f"sw {reg}, {self._slot(sym)}")

    def emit_load_label_addr(self, label):
        reg = self.alloc_reg()
        self.emit(f"la {reg}, {label}")
        return reg

    def emit_load_frame_addr(self, sym):
        reg = self.alloc_reg()
        self.emit(f"addiu {reg}, $sp, {sym.storage}")
        return reg

    def emit_load_indirect(self, addr_reg, size):
        mnemonic = "lbu" if size == 1 else "lw"
        self.emit(f"{mnemonic} {addr_reg}, 0({addr_reg})")
        return addr_reg

    def emit_store_indirect(self, addr_reg, value_reg, size):
        if size != 4:
            raise CompilerError("only word-sized indirect stores are supported")
        self.emit(f"sw {value_reg}, 0({addr_reg})")

    def emit_store_temp(self, slot, reg):
        self.emit(f"sw {reg}, {self._temp_slot(slot)}")

    def emit_load_temp(self, slot):
        reg = self.alloc_reg()
        self.emit(f"lw {reg}, {self._temp_slot(slot)}")
        return reg

    # -- arithmetic -------------------------------------------------------

    def emit_binop(self, op, left_reg, right_node):
        imm = self.as_imm(right_node)
        if imm is not None:
            if op in _SHIFT_OPS and 0 <= imm <= 31:
                result = self.alloc_reg()
                self.emit(f"{_ARITH[op]} {result}, {left_reg}, {imm}")
                self.free_reg(left_reg)
                return result
            if op in _IMM_OPS:
                mnemonic = _IMM_OPS[op]
                lo, hi = (-32768, 32767) if op == "+" else (0, 65535)
                if lo <= imm <= hi:
                    result = self.alloc_reg()
                    self.emit(f"{mnemonic} {result}, {left_reg}, {imm}")
                    self.free_reg(left_reg)
                    return result
            right = self.emit_load_imm(imm)
        else:
            right = self.gen_expr(right_node)
        return self.emit_binop_rr(op, left_reg, right)

    def emit_binop_rr(self, op, left_reg, right_reg):
        result = self.alloc_reg()
        self.emit(f"{_ARITH[op]} {result}, {left_reg}, {right_reg}")
        self.free_reg(left_reg)
        self.free_reg(right_reg)
        return result

    def emit_unop(self, op, reg):
        mnemonic = "negu" if op == "-" else "not"
        result = self.alloc_reg()
        self.emit(f"{mnemonic} {result}, {reg}")
        self.free_reg(reg)
        return result

    # -- calls ------------------------------------------------------------

    def emit_call(self, name, args, want_result=True):
        if len(args) > 4:
            raise CompilerError("more than 4 call arguments are unsupported")
        regs = self.eval_args(args)
        for i, reg in enumerate(regs):
            self.emit(f"move ${4 + i}, {reg}")
            self.free_reg(reg)
        self.emit(f"jal {name}")
        if not want_result:
            return None
        dst = self.alloc_reg()
        self.emit(f"move {dst}, $2")
        return dst

    def emit_set_retval(self, reg):
        self.emit(f"move $2, {reg}")

    # -- control flow -------------------------------------------------------

    def emit_jump(self, label):
        self.emit(f"j {label}")

    def emit_cmp_branch(self, op, left_node, right_node, label):
        left = self.gen_expr(left_node)
        right = self.gen_expr(right_node)
        self.emit(f"{_BFALSE[op]} {left}, {right}, {label}")
        self.free_reg(left)
        self.free_reg(right)

    def emit_branch_if_zero(self, reg, label):
        self.emit(f"beq {reg}, $0, {label}")
