"""Unit tests for the reverse interpreter's value domain and effects."""

import pytest

from repro.discovery.addresses import AddressMap
from repro.discovery.asmmodel import DImm, DInstr, DMem, DReg
from repro.discovery.reverse_interp import (
    Addr,
    InterpFail,
    Junk,
    MachineState,
    _eval_effect_term,
    apply_effects,
    opkey,
)


def addr_map():
    mapping = AddressMap()
    mapping.slots = {
        "a": ("paren", "sp", -4),
        "b": ("paren", "sp", -8),
        "c": ("paren", "sp", -12),
    }
    return mapping


def state(values=None):
    return MachineState(addr_map(), values or {"a": 1, "b": 313, "c": 109}, 32)


class TestValueDomain:
    def test_registers_start_as_unique_symbols(self):
        s = state()
        assert s.reg("r1") == Addr("r10", 0)
        assert s.reg("r2") == Addr("r20", 0)

    def test_mapped_slots_read_initial_values(self):
        s = state()
        assert s.load(DMem("paren", "sp", -8)) == 313

    def test_unmapped_slots_read_junk(self):
        s = state()
        assert isinstance(s.load(DMem("paren", "sp", -100)), Junk)

    def test_stack_temporaries_round_trip(self):
        s = state()
        s.store(DMem("paren", "sp", -64), 42)
        assert s.load(DMem("paren", "sp", -64)) == 42

    def test_address_plus_offset_stays_an_address(self):
        value = _eval_effect_term(
            ("add", ("const", 8), ("ireg", "sp")),
            lambda leaf: Addr("sp0", 0),
            32,
        )
        assert value == Addr("sp0", 8)

    def test_symbolic_arithmetic_collapses_to_junk(self):
        value = _eval_effect_term(
            ("mul", ("ireg", "sp"), ("const", 2)),
            lambda leaf: Addr("sp0", 0),
            32,
        )
        assert isinstance(value, Junk)

    def test_access_through_junk_base_fails(self):
        s = state()
        s.set_reg("r1", Junk("poison"))
        with pytest.raises(InterpFail):
            s.load(DMem("paren", "r1", 0))


class TestApplyEffects:
    def test_reads_happen_before_writes(self):
        s = state()
        s.set_reg("r1", 5)
        s.set_reg("r2", 7)
        # swap-like: r1 <- r2; r2 <- r1 must read the pre-state.
        instr = DInstr("swapish", [DReg("r1"), DReg("r2")])
        apply_effects(
            s,
            instr,
            ((("op", 0), ("val", 1)), (("op", 1), ("val", 0))),
        )
        assert s.reg("r1") == 7
        assert s.reg("r2") == 5

    def test_memory_write(self):
        s = state()
        instr = DInstr("st", [DReg("r1"), DMem("paren", "sp", -4)])
        s.set_reg("r1", 99)
        apply_effects(s, instr, ((("mem", 1), ("val", 0)),))
        assert s.mem[("var", "a")] == 99

    def test_implicit_register_write(self):
        s = state()
        instr = DInstr("cltdish", [])
        apply_effects(s, instr, ((("ireg", "edx"), ("const", 0)),))
        assert s.reg("edx") == 0

    def test_division_by_zero_fails_the_interpretation(self):
        s = state({"a": 1, "b": 5, "c": 0})
        instr = DInstr(
            "div", [DReg("r1"), DMem("paren", "sp", -8), DMem("paren", "sp", -12)]
        )
        with pytest.raises(InterpFail):
            apply_effects(
                s, instr, ((("op", 0), ("div", ("val", 1), ("val", 2))),)
            )


class TestOpKeys:
    def test_signature_based_identity(self):
        a = DInstr("movl", [DImm(5, "$"), DReg("%eax")])
        b = DInstr("movl", [DImm(9, "$"), DReg("%ebx")])
        assert opkey(a) == opkey(b)

    def test_memory_shape_distinguishes(self):
        a = DInstr("movl", [DMem("paren", "%ebp", -8), DReg("%eax")])
        b = DInstr("movl", [DReg("%eax"), DMem("paren", "%ebp", -8)])
        assert opkey(a) != opkey(b)

    def test_call_targets_distinguish(self):
        from repro.discovery.asmmodel import DSym

        a = DInstr("call", [DSym(".mul"), DImm(2)])
        b = DInstr("call", [DSym(".div"), DImm(2)])
        assert opkey(a) != opkey(b)
