"""Exception hierarchy shared by the whole package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CompilerError(ReproError):
    """The miniature C compiler rejected a program."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class AssemblerError(ReproError):
    """The target assembler flagged an illegal assembly program.

    The paper only requires "an assembler which flags illegal assembly
    instructions"; the message carries the offending line number so syntax
    probing can work, but discovery code must not depend on message text.
    """

    def __init__(self, message, lineno=None):
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno


class LinkerError(ReproError):
    """Undefined or duplicate symbols at link time."""


class ExecutionError(ReproError):
    """The simulated machine crashed (bad jump, division by zero, fuel)."""


class DiscoveryError(ReproError):
    """The architecture discovery unit could not complete an analysis."""
