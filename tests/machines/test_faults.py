"""The deterministic fault injector (FaultPlan / FaultyMachine)."""

import pytest

from repro.errors import (
    AssemblerError,
    TargetTimeoutError,
    TransientTargetError,
)
from repro.machines.faults import FaultPlan, FaultyMachine
from repro.machines.machine import RemoteMachine

MAIN = ".text\n.globl main\nmain:\n movl $0, %eax\n ret\n"


def _machine(rate, seed=1, **plan_kwargs):
    plan = FaultPlan(rate=rate, seed=seed, **plan_kwargs)
    return FaultyMachine(RemoteMachine("x86"), plan=plan)


class TestFaultPlan:
    def test_rate_zero_never_faults(self):
        plan = FaultPlan(rate=0.0, seed=3)
        assert all(plan.decide("execute") is None for _ in range(500))

    def test_rate_one_always_faults_until_streak_cap(self):
        plan = FaultPlan(rate=1.0, seed=3, max_consecutive=3)
        kinds = [plan.decide("compile") for _ in range(8)]
        # Every 4th decision is forced clean by the streak cap.
        assert kinds[3] is None and kinds[7] is None
        assert all(k is not None for i, k in enumerate(kinds) if i % 4 != 3)

    def test_same_seed_same_schedule(self):
        a = FaultPlan(rate=0.3, seed=42)
        b = FaultPlan(rate=0.3, seed=42)
        assert [a.decide("execute") for _ in range(200)] == [
            b.decide("execute") for _ in range(200)
        ]

    def test_corrupt_only_offered_for_execute(self):
        plan = FaultPlan(
            rate=1.0, seed=9, max_consecutive=0, weights={"corrupt": 1.0, "drop": 0.01}
        )
        kinds = {plan.decide("compile") for _ in range(100)}
        assert "corrupt" not in kinds
        assert "corrupt" in {plan.decide("execute") for _ in range(100)}

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)

    def test_corrupt_output_differs_from_original(self):
        plan = FaultPlan(rate=1.0, seed=5)
        original = "67\n"
        mangled = [plan.corrupt_output(original) for _ in range(20)]
        assert all(m != original for m in mangled)


class TestFaultyMachine:
    def test_transparent_at_rate_zero(self):
        machine = _machine(0.0)
        result = machine.run_asm([MAIN])
        assert result.ok
        assert machine.fault_stats.injected == 0
        assert machine.stats.executions == 1

    def test_drop_raises_without_touching_target(self):
        machine = _machine(1.0, weights={"drop": 1.0}, max_consecutive=0)
        with pytest.raises(TransientTargetError):
            machine.compile_c("main(){}")
        # The request never reached the target: no invocation counted.
        assert machine.stats.compilations == 0
        assert machine.fault_stats.drops == 1

    def test_crash_counts_the_spent_invocation(self):
        machine = _machine(1.0, weights={"crash": 1.0}, max_consecutive=0)
        with pytest.raises(TransientTargetError):
            machine.compile_c("main(){}")
        assert machine.stats.compilations == 1
        assert machine.fault_stats.crashes == 1

    def test_timeout_is_its_own_type(self):
        machine = _machine(1.0, weights={"timeout": 1.0}, max_consecutive=0)
        with pytest.raises(TargetTimeoutError):
            machine.compile_c("main(){}")
        # ...but still retryable (a TransientTargetError subclass).
        assert issubclass(TargetTimeoutError, TransientTargetError)

    def test_corrupted_execution_returns_wrong_output_silently(self):
        machine = _machine(1.0, weights={"corrupt": 1.0}, max_consecutive=0)
        clean = RemoteMachine("x86")
        asm = clean.compile_c('main(){printf("%i\\n", 67); exit(0);}')
        result = machine.run_asm([asm])
        assert result.ok  # no exception: that is the whole danger
        assert result.output != "67\n"
        assert machine.fault_stats.corruptions >= 1

    def test_permanent_errors_pass_through(self):
        machine = _machine(0.0)
        with pytest.raises(AssemblerError):
            machine.assemble(".text\nnot_an_instruction_at_all x, y, z\n")
        assert machine.assembles_ok(MAIN)

    def test_deterministic_fault_sequence_end_to_end(self):
        def trace(seed):
            machine = _machine(0.5, seed=seed)
            events = []
            for _ in range(30):
                try:
                    machine.compile_c("main(){}")
                    events.append("ok")
                except TransientTargetError as exc:
                    events.append(type(exc).__name__)
            return events

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)

    def test_plan_and_rate_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            FaultyMachine(RemoteMachine("x86"), plan=FaultPlan(rate=0.1), rate=0.2)
