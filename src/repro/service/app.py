"""The discovery service core: jobs in, specs out, one shared cache.

:class:`DiscoveryService` is the HTTP-free heart of ``repro serve``.
It owns three things:

* the :class:`~repro.service.jobs.JobStore` (the durable queue),
* one :class:`~repro.discovery.supervisor.CampaignSupervisor` per
  *running* job, all driven off a single global worker budget by
  :meth:`step` (the fleet loop), and
* the shared :class:`~repro.discovery.cache.ProbeCache` every worker
  reads and writes through the ``/cache`` endpoints -- the service
  process is the only writer of the shard files, so N workers can
  share one cache without two-writer torn lines.

Crash story: the service holds **no state the disk does not**.  Jobs
are JSON files, campaign progress lives in the workers' run
directories (checkpoints + the ``progress.json`` sidecar), and the
cache is write-through JSONL.  :meth:`adopt` -- called at every start
-- lists the open jobs and rebuilds their supervisors; the supervisors
in turn re-adopt half-finished run directories over the ordinary
``--resume`` path (reaping any orphaned worker first), so a campaign
interrupted by service death completes with a spec bit-for-bit
identical to an uninterrupted one.

The split from :mod:`repro.service.httpd` is deliberate: everything
here is callable in-process (the tests drive it without sockets), and
everything HTTP is a thin translation layer that can never hold state
worth losing.
"""

from __future__ import annotations

import os
import pathlib
import signal
import threading

from repro.discovery.cache import ProbeCache, cache_info
from repro.discovery.durable import PROGRESS_FILE
from repro.discovery.supervisor import DONE as CAMPAIGN_DONE
from repro.discovery.supervisor import CampaignPolicy, CampaignSupervisor
from repro.service import jobs as jobstates
from repro.service.jobs import JobError, JobStore


def _read_json(path):
    import json

    try:
        return json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError):
        return None


class DiscoveryService:
    """The control plane: a durable job queue fronting a worker fleet.

    ``fleet`` is the *global* concurrent-worker budget: jobs run
    side by side, each supervisor launching into whatever slots the
    earlier-submitted jobs left free this tick (FIFO by job id, so a
    big job cannot be starved by later arrivals)."""

    def __init__(
        self,
        root,
        fleet=2,
        cache_dir=None,
        heartbeat_every=0.5,
        lease_timeout=10.0,
        poll_interval=0.2,
        echo=print,
    ):
        self.root = pathlib.Path(root)
        self.fleet = max(1, fleet)
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else self.root / "cache"
        self.cache = ProbeCache(self.cache_dir)
        self.heartbeat_every = heartbeat_every
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.echo = echo
        self.jobs = JobStore(self.root)
        #: the advertised ``--cache-url``; the HTTP layer sets it once
        #: the listening socket is bound (workers need a real port)
        self.cache_url = None
        self._supervisors = {}  # job id -> CampaignSupervisor, FIFO
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread = None

    # -- job lifecycle -------------------------------------------------

    def submit(self, payload):
        """Validate and enqueue one campaign submission (the body of
        ``POST /campaigns``); the fleet loop picks it up next tick."""
        from repro.machines.machine import target_names

        if not isinstance(payload, dict):
            raise JobError("submission body must be a JSON object")
        targets = payload.get("targets")
        knobs = {k: payload[k] for k in jobstates.SUBMIT_KNOBS if k in payload}
        bogus = sorted(set(payload) - set(jobstates.SUBMIT_KNOBS) - {"targets"})
        if bogus:
            raise JobError(
                f"unknown option(s): {', '.join(bogus)} "
                f"(allowed: targets, {', '.join(jobstates.SUBMIT_KNOBS)})"
            )
        job = self.jobs.submit(targets, known_targets=target_names(), **knobs)
        self.echo(f"[{job['id']}] queued: {', '.join(job['targets'])}")
        return job

    def adopt(self):
        """Re-arm every non-terminal job after a restart.  Supervisors
        re-adopt half-finished run directories via ``--resume``; jobs
        that never launched simply queue again."""
        adopted = []
        with self._lock:
            for job in self.jobs.open_jobs():
                self._ensure_supervisor(job)
                adopted.append(job["id"])
        for job_id in adopted:
            self.echo(f"[{job_id}] adopted from a previous service run")
        return adopted

    def cancel(self, job_id, reason="client cancel"):
        """Tear a job down: SIGKILL its live workers, mark every open
        campaign cancelled, finalise the summary.  Run directories stay
        on disk (a cancelled campaign is adoptable by a future job only
        via operator surgery; the *job* is terminal)."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job["state"] in jobstates.TERMINAL_STATES:
                raise JobError(f"{job_id} is already {job['state']}")
            supervisor = self._supervisors.pop(job_id, None)
            detail = None
            if supervisor is not None:
                supervisor.cancel(reason=reason)
                detail = supervisor.finalise()
            job = self.jobs.update(
                job_id, state=jobstates.CANCELLED, detail=detail
            )
        self.echo(f"[{job_id}] cancelled ({reason})")
        return job

    # -- the fleet loop ------------------------------------------------

    def step(self):
        """One control-plane tick: promote queued jobs, give every
        running job's supervisor a chance to reap/launch within the
        global budget, retire finished jobs.  Returns the number of
        worker processes running afterwards."""
        with self._lock:
            for job in self.jobs.open_jobs():
                if job["state"] == jobstates.QUEUED:
                    self._ensure_supervisor(job)
            running = 0
            for job_id in list(self._supervisors):
                supervisor = self._supervisors[job_id]
                before = len(supervisor._active())
                free = max(0, self.fleet - self._active_workers())
                after = supervisor.poll(slots=before + free)
                if not supervisor._open():
                    self._retire(job_id, supervisor)
                else:
                    running += after
            return running

    def run_loop(self):
        """The fleet loop, until :meth:`stop` (the thread target)."""
        while not self._stop.is_set():
            self.step()
            self._stop.wait(self.poll_interval)

    def start(self):
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run_loop, name="fleet-loop", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, kill_workers=True):
        """Stop the fleet loop.  Active workers are SIGKILLed but their
        jobs' states are left *running* on disk: a restarted service
        adopts and completes them (this is the restart e2e contract)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if not kill_workers:
            return
        with self._lock:
            for supervisor in self._supervisors.values():
                for campaign in supervisor._active():
                    if campaign.process is None:
                        continue
                    try:
                        os.kill(campaign.process.pid, signal.SIGKILL)
                    except OSError:
                        pass
                    campaign.process.wait()
        self.cache.close()

    # -- reads ---------------------------------------------------------

    def status(self, job_id):
        """Typed job status: the job record plus one progress entry per
        campaign, derived from the live supervisor when this service is
        running the job and from the run directories' ``progress.json``
        sidecars either way -- so status works for adopted, finished
        and crashed jobs alike."""
        from repro.discovery.driver import ArchitectureDiscovery

        job = self.jobs.get(job_id)
        phases_total = len(ArchitectureDiscovery.PHASES)
        with self._lock:
            supervisor = self._supervisors.get(job_id)
            live = (
                {c.target: c for c in supervisor.campaigns} if supervisor else {}
            )
            campaigns = []
            for target in job["targets"]:
                home = self._job_root(job_id) / target
                progress = _read_json(home / "run" / PROGRESS_FILE) or {}
                campaign = live.get(target)
                if campaign is not None:
                    state = campaign.state
                    attempts = campaign.attempts
                else:
                    state, attempts = self._disk_state(job, home, target)
                spec = home / "out" / f"{target}.beg"
                campaigns.append(
                    {
                        "target": target,
                        "state": state,
                        "attempts": attempts,
                        "completed_phases": progress.get("completed", []),
                        "phases_total": phases_total,
                        "phase_records": progress.get("phase_records", {}),
                        "spec": str(spec) if spec.exists() else None,
                    }
                )
        out = dict(job)
        out["campaigns"] = campaigns
        return out

    def spec(self, job_id):
        """The finished specs, ``{target: beg-text}``.  Only a ``done``
        job has them all; anything else is a client error the HTTP
        layer turns into a 409."""
        job = self.jobs.get(job_id)
        if job["state"] != jobstates.DONE:
            raise JobError(
                f"{job_id} is {job['state']}, not {jobstates.DONE}; "
                f"no specs to fetch"
            )
        specs = {}
        for target in job["targets"]:
            path = self._job_root(job_id) / target / "out" / f"{target}.beg"
            try:
                specs[target] = path.read_text()
            except OSError:
                raise JobError(f"{job_id}: spec artifact {path} is missing") from None
        return {"id": job_id, "specs": specs}

    def stats(self):
        """The ``/stats`` payload: queue composition, fleet load, and
        the shared cache priced both live (this process's store and
        counters) and from disk (the shard inventory ``repro
        cache-info`` prints)."""
        by_state = {}
        for job in self.jobs.list():
            by_state[job["state"]] = by_state.get(job["state"], 0) + 1
        with self._lock:
            active = self._active_workers()
            supervised = sorted(self._supervisors)
        return {
            "jobs": by_state,
            "fleet": self.fleet,
            "active_workers": active,
            "running_jobs": supervised,
            "cache": self.cache.shard_stats(),
            "cache_disk": cache_info(self.cache_dir),
        }

    # -- the shared cache ----------------------------------------------

    def cache_get(self, fingerprint, key):
        verb, _, content_hash = key.partition(":")
        if not verb or not content_hash:
            raise JobError(f"cache key must be <verb>:<content-hash>, got {key!r}")
        return self.cache.get(fingerprint, verb, content_hash)

    def cache_put(self, fingerprint, key, payload):
        verb, _, content_hash = key.partition(":")
        if not verb or not content_hash:
            raise JobError(f"cache key must be <verb>:<content-hash>, got {key!r}")
        if not isinstance(payload, dict):
            raise JobError("cache payload must be a JSON object")
        self.cache.put(fingerprint, verb, content_hash, payload)

    # -- internals -----------------------------------------------------

    def _job_root(self, job_id):
        return self.root / "campaigns" / job_id

    def _active_workers(self):
        return sum(len(s._active()) for s in self._supervisors.values())

    def _ensure_supervisor(self, job):
        job_id = job["id"]
        if job_id in self._supervisors:
            return self._supervisors[job_id]
        policy = CampaignPolicy(
            max_attempts=job.get("max_attempts") or 5,
            escalate_votes=job.get("escalate_votes"),
            lease_timeout=self.lease_timeout,
            poll_interval=self.poll_interval,
        )
        supervisor = CampaignSupervisor(
            job["targets"],
            self._job_root(job_id),
            fleet=self.fleet,
            policy=policy,
            seed=job.get("seed", 1997),
            cache_url=self.cache_url,
            workers=job.get("workers"),
            heartbeat_every=self.heartbeat_every,
            echo=lambda msg, job_id=job_id: self.echo(f"[{job_id}] {msg}"),
        )
        self._supervisors[job_id] = supervisor
        if job["state"] == jobstates.QUEUED:
            self.jobs.update(job_id, state=jobstates.RUNNING)
        return supervisor

    def _retire(self, job_id, supervisor):
        summary = supervisor.finalise()
        del self._supervisors[job_id]
        state = jobstates.DONE if summary["ok"] else jobstates.FAILED
        self.jobs.update(job_id, state=state, detail=summary)
        self.echo(f"[{job_id}] {state}")

    def _disk_state(self, job, home, target):
        """A campaign's state when no live supervisor holds it: derived
        from the artifacts on disk, same precedence the supervisor's
        own terminal paths write them."""
        if (home / "out" / f"{target}.beg").exists():
            return CAMPAIGN_DONE, None
        failure = _read_json(home / "failure.json")
        if failure is not None:
            return failure.get("state", "quarantined"), failure.get("attempts")
        incomplete = _read_json(home / "incomplete.json")
        if incomplete is not None:
            return incomplete.get("state", "incomplete"), incomplete.get("attempts")
        if job["state"] in jobstates.TERMINAL_STATES:
            return job["state"], None
        return "pending", None
