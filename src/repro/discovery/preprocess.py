"""The Preprocessor: mutation-analysis passes (paper section 4).

Four passes turn a raw tokenized region into a form the Extractor can
interpret:

1. **Delay-slot normalisation** -- the SPARC moves an argument set-up
   instruction into the call's delay slot (Figure 4c); detected by
   showing that separating call and successor with a filler changes the
   result, and repaired by hoisting the successor back above the call.
2. **Redundant-instruction elimination** (Figure 6) -- delete each
   instruction under register clobbering; remove it permanently when
   every variant matches the original output.
3. **Live-range splitting** (Figure 7) -- partition each register's
   occurrences into ranges by growing rename regions backwards; ranges
   whose definition (or use) is invisible expose implicit arguments.
4. **Implicit-argument detection and def/use computation** (Figures 8
   and 9) -- renameAll independence tests, clobber liveness profiles,
   and copy-chain mutations classify every register occurrence and
   attach implicit inputs/outputs (or candidates for the reverse
   interpreter to resolve) to each instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discovery import mutation as mut
from repro.discovery.asmmodel import DReg, DSym, split_lines


@dataclass
class LiveRange:
    """A maximal set of same-register occurrences connected def-to-use."""

    reg: str
    occurrences: list  # [(instr_idx, operand_idx)] in program order
    resolved: bool = True
    #: for unresolved singletons: "use" (definition is invisible) or
    #: "def" (the consumer is invisible)
    flavor: str | None = None


@dataclass
class RegionInfo:
    """Everything the Preprocessor learned about one sample's region."""

    clobber_safe: list = field(default_factory=list)
    call_like: list = field(default_factory=list)
    removed: list = field(default_factory=list)  # redundant instrs (text)
    normalised_delay_slots: int = 0
    ranges: list = field(default_factory=list)
    #: (instr_idx, operand_idx) -> "def" | "use" | "usedef"
    visible_kinds: dict = field(default_factory=dict)
    implicit_in: dict = field(default_factory=dict)  # instr_idx -> set(reg)
    implicit_out: dict = field(default_factory=dict)
    #: instr_idx -> set(reg): involvement proven, direction unknown; the
    #: reverse interpreter resolves these (x86 cltd/idivl)
    implicit_maybe: dict = field(default_factory=dict)
    dependent_regs: list = field(default_factory=list)

    def all_implicit_candidates(self, index):
        out = set(self.implicit_in.get(index, ()))
        out |= self.implicit_out.get(index, set())
        out |= self.implicit_maybe.get(index, set())
        return out


class Preprocessor:
    def __init__(self, engine):
        self.engine = engine
        self.corpus = engine.corpus
        self.syntax = engine.corpus.syntax

    # ------------------------------------------------------------------

    def process(self, sample):
        """Run all passes; attaches a RegionInfo to the sample (or
        discards it when analysis cannot proceed)."""
        info = RegionInfo()
        sample.info = info
        info.call_like = self._find_call_like(sample)
        info.clobber_safe = self.engine.clobber_safe_registers(sample)
        self._normalise_delay_slots(sample, info)
        # The calling-convention analysis wants the region before
        # redundant-instruction elimination (stack clean-up instructions
        # are "redundant" for the sample but part of the protocol).
        sample.region_original = [instr.clone() for instr in sample.region]
        self._eliminate_redundant(sample, info)
        info.call_like = self._find_call_like(sample)
        self._split_live_ranges(sample, info)
        self._implicit_arguments(sample, info)
        self._def_use(sample, info)
        return info

    # -- call-like detection ------------------------------------------------

    def _find_call_like(self, sample):
        """Instructions referencing a symbol not defined in this file
        transfer control to external code (call/jal/jsr/calls)."""
        defined = set()
        text = "\n".join(sample.pre_lines + sample.post_lines)
        for line in split_lines(text, self.syntax.comment_char):
            defined.update(line.labels)
        for instr in sample.region:
            defined.update(instr.labels)
        call_like = []
        for index, instr in enumerate(sample.region):
            for op in instr.operands:
                if isinstance(op, DSym) and not op.prefix and op.name not in defined:
                    call_like.append(index)
                    break
        return call_like

    # -- pass 1: delay slots -----------------------------------------------

    def _normalise_delay_slots(self, sample, info):
        for index in reversed(info.call_like):
            succ = index + 1
            if succ >= len(sample.region):
                continue
            successor = sample.region[succ]
            if succ in info.call_like or successor.labels or not successor.mnemonic:
                continue
            scratch = self.engine.fresh_registers(sample, 1)
            if not scratch:
                continue
            filler = self.engine.clobber_instr(scratch[0]).clone(glued=True)
            separated = mut.insert(sample.region, succ, [filler])
            if self.engine.succeeds_static(sample, separated):
                continue  # no delay slot here
            hoisted = mut.insert(
                mut.move(sample.region, succ, index), index + 2, [filler]
            )
            if self.engine.succeeds_static(sample, hoisted):
                sample.region = hoisted
                info.normalised_delay_slots += 1
                sample.notes.append(
                    f"hoisted delay-slot instruction above call at {index}"
                )

    # -- pass 2: redundant instructions --------------------------------------

    def _eliminate_redundant(self, sample, info):
        index = len(sample.region) - 1
        while index >= 0:
            instr = sample.region[index]
            if not instr.mnemonic or instr.glued:
                index -= 1
                continue

            def build(rng, index=index):
                mutated = mut.delete(sample.region, index)
                return mut.insert(mutated, 0, self.engine.clobber_all_prefix(sample))

            if self.engine.succeeds(sample, build):
                # Check the deletion also stands without the clobbers.
                plain = mut.delete(sample.region, index)
                if self.engine.succeeds_static(sample, plain):
                    info.removed.append(self.syntax.render_instr(instr).strip())
                    sample.region = plain
            index -= 1

    # -- pass 3: live ranges ---------------------------------------------------

    def _region_registers(self, sample):
        regs = []
        for instr in sample.region:
            for op in instr.operands:
                if isinstance(op, DReg) and op.name not in regs:
                    regs.append(op.name)
        safe = set(self.engine.clobber_safe_registers(sample))
        return [r for r in regs if r in safe]

    def _occurrences(self, sample, reg):
        occs = []
        for i, instr in enumerate(sample.region):
            for k, op in enumerate(instr.operands):
                if isinstance(op, DReg) and op.name == reg:
                    occs.append((i, k))
        return occs

    def _range_ok(self, sample, reg, chunk):
        fresh = self.engine.rename_targets(sample, reg, chunk)
        if not fresh:
            return False
        first_instr = chunk[0][0]

        def build(rng):
            new_reg = rng.choice(fresh)
            mutated = mut.rename(sample.region, reg, new_reg, chunk)
            clob = self.engine.clobber_instr(new_reg)
            insert_at = first_instr
            if mutated[insert_at].glued:
                insert_at -= 1  # never separate a delay pair
            mutated = mut.insert(mutated, insert_at, [clob])
            # Clobber everything at region start (Figure 6's discipline):
            # a stale register left over from Init could otherwise make
            # the mutation succeed by coincidence.
            return mut.insert(mutated, 0, self.engine.clobber_all_prefix(sample))

        return self.engine.succeeds(sample, build)

    def _split_live_ranges(self, sample, info):
        for reg in self._region_registers(sample):
            occs = self._occurrences(sample, reg)
            ranges = []
            end = len(occs) - 1
            while end >= 0:
                found = None
                for start in range(end, -1, -1):
                    if self._range_ok(sample, reg, occs[start : end + 1]):
                        found = start
                        break
                if found is None:
                    ranges.append(
                        LiveRange(reg, [occs[end]], resolved=False)
                    )
                    end -= 1
                else:
                    ranges.append(LiveRange(reg, occs[found : end + 1]))
                    end = found - 1
            ranges.reverse()
            info.ranges.extend(ranges)

    # -- pass 4a: implicit arguments ---------------------------------------------

    def _clobber_at(self, sample, reg, position):
        """Does clobbering *reg* just before *position* leave the output
        unchanged?  (position == len(region) clobbers after everything.)"""
        if 0 < position <= len(sample.region) - 1 and sample.region[position].glued:
            position += 1  # keep delay pairs intact

        def build(rng):
            mutated = mut.insert(
                sample.region, position, [self.engine.clobber_instr(reg)]
            )
            return mut.insert(mutated, 0, self.engine.clobber_all_prefix(sample))

        return self.engine.succeeds(sample, build)

    def _dependence(self, sample, reg):
        """Fig 8 step 1: rename every visible occurrence of *reg* and
        poison the original; if the sample still works, nothing depends
        on *reg* invisibly."""
        all_occs = self._occurrences(sample, reg)
        fresh = self.engine.rename_targets(sample, reg, all_occs)
        if not fresh:
            return True  # cannot test: assume dependent (conservative)

        def build(rng):
            new_reg = rng.choice(fresh)
            mutated = mut.rename_all(sample.region, reg, new_reg)
            prefix = self.engine.clobber_all_prefix(sample)
            return mut.insert(mutated, 0, prefix + [self.engine.clobber_instr(reg)])

        return not self.engine.succeeds(sample, build)

    def _implicit_arguments(self, sample, info):
        unresolved = [r for r in info.ranges if not r.resolved]
        if not unresolved:
            return
        dependent = set()
        for reg in sorted({r.reg for r in unresolved}):
            if self._dependence(sample, reg):
                dependent.add(reg)
        info.dependent_regs = sorted(dependent)
        for live in unresolved:
            reg = live.reg
            index, _ = live.occurrences[0]
            # Direction: if the value of reg is dead right after this
            # instruction, the occurrence was the last (visible) reader.
            if self._clobber_at(sample, reg, index + 1):
                live.flavor = "use"
                self._attach_implicit_out(sample, info, reg, index)
            else:
                live.flavor = "def"
                self._attach_implicit_in(sample, info, reg, index)

    def _attach_implicit_out(self, sample, info, reg, use_index):
        """Find the invisible producer of the value read at use_index."""
        span = range(use_index - 1, -1, -1)
        for i in span:
            if i in info.call_like:
                info.implicit_out.setdefault(i, set()).add(reg)
                return
            if self._writes_visibly(sample.region[i], reg):
                break
        for i in span:
            if self._writes_visibly(sample.region[i], reg):
                break
            info.implicit_maybe.setdefault(i, set()).add(reg)

    def _attach_implicit_in(self, sample, info, reg, def_index):
        """Find the invisible consumer of the value defined at def_index."""
        span = range(def_index + 1, len(sample.region))
        for i in span:
            if i in info.call_like:
                info.implicit_in.setdefault(i, set()).add(reg)
                return
            if self._writes_visibly(sample.region[i], reg):
                break
        for i in span:
            if self._writes_visibly(sample.region[i], reg):
                break
            info.implicit_maybe.setdefault(i, set()).add(reg)

    @staticmethod
    def _writes_visibly(instr, reg):
        # Without def/use info yet, "mentions the register directly".
        return any(isinstance(op, DReg) and op.name == reg for op in instr.operands)

    # -- pass 4b: def/use (Figure 9) ----------------------------------------------

    def _def_use(self, sample, info):
        for live in info.ranges:
            if not live.resolved:
                kind = live.flavor or "use"
                info.visible_kinds[live.occurrences[0]] = kind
                continue
            occs = live.occurrences
            info.visible_kinds[occs[0]] = "def"
            if len(occs) == 1:
                continue
            info.visible_kinds[occs[-1]] = "use"
            for middle in range(1, len(occs) - 1):
                kind = self._middle_kind(sample, live, middle)
                info.visible_kinds[occs[middle]] = kind

    def _middle_kind(self, sample, live, middle):
        """Fig 9: duplicate the def-chain up to this occurrence under a
        fresh register; a pure use leaves the original chain intact, a
        use-def breaks it."""
        reg = live.reg
        occs = live.occurrences
        fresh = self.engine.rename_targets(sample, reg, occs[: middle + 1])
        if not fresh:
            return "usedef"  # conservative

        target = occs[middle]
        chain_instrs = sorted({i for i, _k in occs[: middle + 1]})

        def build(rng):
            new_reg = rng.choice(fresh)
            mutated = [instr.clone() for instr in sample.region]
            insert_at = target[0]
            copies = []
            for i in chain_instrs:
                if i == target[0]:
                    continue
                copies.append(
                    mutated[i].rename_register(reg, new_reg).clone(labels=[], glued=False)
                )
            # Rename the tested occurrence itself.
            renamed = mut.rename(mutated, reg, new_reg, [target])
            if renamed[insert_at].glued:
                insert_at -= 1
            renamed = mut.insert(renamed, insert_at, copies)
            return mut.insert(renamed, 0, self.engine.clobber_all_prefix(sample))

        return "use" if self.engine.succeeds(sample, build) else "usedef"
