"""Runtime builtins available on every simulated target.

These stand in for libc and the compiler support library: ``printf`` and
``exit`` (every sample uses both, as in paper Figure 3), and the SPARC's
software arithmetic routines ``.mul``/``.div``/``.rem`` (paper Figure
15(e) shows the discovered rule for ``call .mul``).
"""

from __future__ import annotations

from repro import wordops
from repro.errors import ExecutionError


def builtin_printf(state, abi, isa):
    """Minimal printf: %i/%d (signed), %u, %x, %c, %s, %%."""
    fmt_addr = abi.get_arg(state, 0)
    fmt = state.mem.load_cstring(fmt_addr)
    out = []
    arg_index = 1
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        if i >= len(fmt):
            raise ExecutionError("printf: trailing %")
        spec = fmt[i]
        i += 1
        if spec == "%":
            out.append("%")
            continue
        value = abi.get_arg(state, arg_index)
        arg_index += 1
        if spec in ("i", "d"):
            out.append(str(wordops.to_signed(value, isa.word_bits)))
        elif spec == "u":
            out.append(str(wordops.mask(value, isa.word_bits)))
        elif spec == "x":
            out.append(format(wordops.mask(value, isa.word_bits), "x"))
        elif spec == "c":
            out.append(chr(value & 0xFF))
        elif spec == "s":
            out.append(state.mem.load_cstring(value))
        else:
            raise ExecutionError(f"printf: unsupported conversion %{spec}")
    state.output.append("".join(out))
    abi.set_retval(state, len(out))


def builtin_exit(state, abi, isa):
    state.exit_code = wordops.to_signed(abi.get_arg(state, 0), isa.word_bits)
    state.halted = True


def _software_binop(op):
    def builtin(state, abi, isa):
        bits = isa.word_bits
        a = abi.get_arg(state, 0)
        b = abi.get_arg(state, 1)
        if op in ("div", "rem") and wordops.mask(b, bits) == 0:
            raise ExecutionError(f"software {op}: division by zero")
        if op == "mul":
            result = wordops.mul(a, b, bits)
        elif op == "div":
            result = wordops.sdiv(a, b, bits)
        else:
            result = wordops.smod(a, b, bits)
        abi.set_retval(state, result)

    return builtin


def standard_runtime():
    """Builtins present on every target."""
    return {"printf": builtin_printf, "exit": builtin_exit}


def sparc_runtime():
    """SPARC adds the software integer arithmetic routines."""
    runtime = standard_runtime()
    runtime[".mul"] = _software_binop("mul")
    runtime[".div"] = _software_binop("div")
    runtime[".rem"] = _software_binop("rem")
    return runtime
