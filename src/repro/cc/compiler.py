"""Compiler registry: one native C compiler per simulated target."""

from __future__ import annotations

_CODEGENS = {}


def _registry():
    if not _CODEGENS:
        from repro.cc.codegen.alpha import AlphaCodeGen
        from repro.cc.codegen.m68k import M68kCodeGen
        from repro.cc.codegen.mips import MipsCodeGen
        from repro.cc.codegen.sparc import SparcCodeGen
        from repro.cc.codegen.vax import VaxCodeGen
        from repro.cc.codegen.x86 import X86CodeGen

        for cls in (X86CodeGen, MipsCodeGen, SparcCodeGen, AlphaCodeGen, VaxCodeGen, M68kCodeGen):
            _CODEGENS[cls.name] = cls
    return _CODEGENS


class CCompiler:
    """The target's ``cc -S``: C source text in, assembly text out."""

    def __init__(self, target):
        registry = _registry()
        if target not in registry:
            raise ValueError(f"no C compiler for target {target!r}")
        self.target = target
        self._codegen_cls = registry[target]

    def compile(self, source, headers=None):
        # A fresh code generator per translation unit, like running `cc`.
        return self._codegen_cls().compile(source, headers or {})


def compiler_for(target):
    return CCompiler(target)
