"""E15: assembler-syntax probing (paper sections 2 and 3.1).

Comment-character discovery, literal-base scanning and probing, the
load-immediate template, register-universe probing, and the paper's
headline immediate-range result: the SPARC ``add`` immediate is
restricted to [-4096, 4095].
"""

import pytest

from repro.discovery import probe
from repro.discovery.asmmodel import DImm, DInstr, DReg
from tests.discovery.conftest import discovery_report


class TestCommentChar:
    def test_sparc_uses_bang(self):
        assert discovery_report("sparc").syntax.comment_char == "!"

    @pytest.mark.parametrize("target", ["x86", "mips", "alpha", "vax"])
    def test_hash_targets(self, target):
        assert discovery_report(target).syntax.comment_char == "#"

    def test_m68k_uses_pipe(self):
        assert discovery_report("m68k").syntax.comment_char == "|"


class TestLiteralSyntax:
    @pytest.mark.parametrize("target,prefix", [
        ("x86", "$"),
        ("vax", "$"),
        ("mips", ""),
        ("sparc", ""),
        ("alpha", ""),
        ("m68k", "#"),
    ])
    def test_immediate_prefix(self, target, prefix):
        assert discovery_report(target).syntax.imm_prefix == prefix

    def test_all_compilers_emit_decimal(self, report):
        assert report.syntax.emitted_base == 10

    def test_accepted_bases_probed(self, report):
        bases = report.syntax.accepted_bases
        assert bases["decimal"] is True
        assert bases["hex-lower"] is True
        assert bases["octal"] is True
        # No simulated assembler takes upper-case hex prefixes ("0X...").
        assert bases["hex-upper"] is False


class TestLoadImmediate:
    @pytest.mark.parametrize("target,mnemonic", [
        ("x86", "movl"),
        ("mips", "li"),
        ("sparc", "set"),
        ("alpha", "ldiq"),
        ("vax", "movl"),
        ("m68k", "move.l"),
    ])
    def test_template_mnemonic(self, target, mnemonic):
        assert discovery_report(target).syntax.loadimm.mnemonic == mnemonic

    def test_template_accepts_full_word_range(self, report):
        machine = report.corpus.machine
        syntax = report.syntax
        reg = sorted(syntax.registers)[0]
        for value in (0, -1, 2**31 - 1, -(2**31)):
            instr = syntax.load_imm_instr(value, reg)
            body = ".text\n.globl main\nmain:\n" + syntax.render_instr(instr)
            assert machine.assembles_ok(body)


class TestRegisterUniverse:
    @pytest.mark.parametrize("target,count", [
        ("x86", 8),
        ("mips", 34),   # $0..$31 plus the $sp/$fp aliases
        ("sparc", 34),  # %g/%o/%l/%i files plus %sp alias
        ("alpha", 32),
        ("vax", 15),    # r0..r11 + ap/fp/sp
        ("m68k", 18),   # d0-d7, a0-a7 + fp/sp aliases
    ])
    def test_register_count(self, target, count):
        assert len(discovery_report(target).syntax.registers) == count

    def test_x86_finds_two_substitution_distance_registers(self):
        regs = discovery_report("x86").syntax.registers
        # %esi/%edi differ from %eax in two letter positions.
        assert "%esi" in regs and "%edi" in regs

    def test_sparc_finds_sibling_register_files(self):
        regs = discovery_report("sparc").syntax.registers
        for family in ("%g0", "%i0", "%o0", "%l0"):
            assert family in regs

    def test_symbols_never_classified_as_registers(self, report):
        for name in ("printf", "exit", "Init", "P", "P2", "z1", "Lstr0", "main"):
            assert name not in report.syntax.registers


class TestImmediateRanges:
    def test_sparc_add_range_is_the_papers_result(self):
        report = discovery_report("sparc")
        machine = report.corpus.machine
        instr = DInstr("add", [DReg("%o0"), DImm(0), DReg("%o1")])
        lo, hi = probe.immediate_range(machine, report.syntax, instr, 1)
        assert (lo, hi) == (-4096, 4095)

    def test_mips_addiu_sixteen_bit(self):
        report = discovery_report("mips")
        machine = report.corpus.machine
        instr = DInstr("addiu", [DReg("$8"), DReg("$9"), DImm(0)])
        lo, hi = probe.immediate_range(machine, report.syntax, instr, 2)
        assert (lo, hi) == (-32768, 32767)

    def test_alpha_literal_eight_bit(self):
        report = discovery_report("alpha")
        machine = report.corpus.machine
        instr = DInstr("addl", [DReg("$1"), DImm(0), DReg("$2")])
        lo, hi = probe.immediate_range(machine, report.syntax, instr, 1)
        assert (lo, hi) == (0, 255)

    def test_x86_unrestricted(self):
        report = discovery_report("x86")
        machine = report.corpus.machine
        instr = DInstr("addl", [DImm(0, "$"), DReg("%eax")])
        lo, hi = probe.immediate_range(machine, report.syntax, instr, 0)
        assert lo <= -(2**31) and hi >= 2**31 - 1

    def test_synthesized_imm_rules_carry_ranges(self):
        spec = discovery_report("sparc").spec
        plus = spec.imm_rules.get("Plus")
        assert plus is not None
        assert plus.imm_range == (-4096, 4095)

    def test_mips_imm_rules_carry_ranges(self):
        spec = discovery_report("mips").spec
        assert spec.imm_rules["Plus"].imm_range == (-32768, 32767)
        assert spec.imm_rules["And"].imm_range == (0, 65535)
