"""E1 (paper Figure 1): the self-retargeting compiler, end to end.

``ac`` is pointed at each of the five simulated machines; the discovered
machine description drives a generated back end; compiled language-A
programs must behave exactly like the IR reference interpreter.
"""

import pytest

from repro.beg.codegen import GeneratedBackend
from repro.toyc import SelfRetargetingCompiler, compile_to_ir
from repro.beg.ir import eval_program
from tests.discovery.conftest import TARGETS, discovery_report

PROGRAMS = [
    ("multiply", "var x, y; x := 313; y := x * 109; print y;"),
    (
        "all_binary_ops",
        "var a, b; a := 100; b := 7;"
        " print a + b; print a - b; print a * b; print a / b; print a % b;"
        " print a & b; print a | b; print a ^ b; print a << 3; print a >> 2;",
    ),
    ("unary_ops", "var a; a := 37; print -a; print ~a;"),
    (
        "comparisons",
        "var a; a := 3;"
        " if a < 4 then print 1; end"
        " if a <= 3 then print 2; end"
        " if a > 2 then print 3; end"
        " if a >= 3 then print 4; end"
        " if a == 3 then print 5; end"
        " if a != 4 then print 6; end"
        " if a > 3 then print 7; end",
    ),
    ("if_else", "var x; x := 9; if x < 5 then print 0; else print 1; end"),
    (
        "while_sum",
        "var i, s; i := 0; s := 0; while i < 10 do s := s + i; i := i + 1; end print s;",
    ),
    (
        "fibonacci",
        "var a, b, t, n; a := 0; b := 1; n := 0;"
        " while n < 20 do t := a + b; a := b; b := t; n := n + 1; end print a;",
    ),
    ("deep_expression", "var x; x := ((2 + 3) * (4 + 5)) / (1 + 1) - 6 % 4; print x;"),
    ("negative_values", "var a; a := 0 - 3904; print a >> 3; print a / 4; print a % 4;"),
    ("immediates", "var a; a := 100; print a + 7; print a * 3; print a << 2; print a & 12;"),
]


@pytest.fixture(scope="session")
def ac():
    compiler = SelfRetargetingCompiler()
    for target in TARGETS:
        report = discovery_report(target)
        compiler._targets[target] = type(
            "R", (), {}
        )  # placeholder replaced just below
        from repro.toyc.compiler import Retargeting

        compiler._targets[target] = Retargeting(
            report.corpus.machine, report, GeneratedBackend(report.spec)
        )
    return compiler


@pytest.fixture(params=TARGETS, scope="session")
def target(request):
    return request.param


@pytest.mark.parametrize("name,source", PROGRAMS, ids=[p[0] for p in PROGRAMS])
def test_program_matches_reference_interpreter(ac, target, name, source):
    ok, output, expected = ac.check(source, target)
    assert ok, f"{target}/{name}: got {output!r}, want {expected!r}"


def test_generated_assembly_uses_only_discovered_registers(ac, target):
    report = discovery_report(target)
    asm = ac.compile("var x; x := 3 + 4; print x;", target)
    machine = report.corpus.machine
    result = machine.run_asm([asm])
    assert result.ok
    assert result.output == "7\n"


def test_word_width_behaviour_follows_the_target(ac):
    # 2**31 overflows a 32-bit word but not the Alpha's 64-bit word.
    source = "var a; a := 1; print (a << 30) * 2;"
    ok32, out32, _ = ac.check(source, "x86")
    ok64, out64, _ = ac.check(source, "alpha")
    assert ok32 and ok64
    assert out32 == f"{-(2**31)}\n"
    assert out64 == f"{2**31}\n"


def test_compile_is_deterministic(ac, target):
    source = "var x; x := 5; print x * x;"
    assert ac.compile(source, target) == ac.compile(source, target)


def test_unretargeted_machine_is_an_error():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        SelfRetargetingCompiler().compile("print 1;", "pdp11")


def test_frontend_and_backend_agree_on_locals_budget(ac, target):
    report = discovery_report(target)
    backend = GeneratedBackend(report.spec)
    names = ", ".join(f"v{i}" for i in range(8))
    source = f"var {names}; v0 := 1; print v0;"
    program = compile_to_ir(source)
    asm = backend.compile_ir(program)
    result = report.corpus.machine.run_asm([asm])
    assert result.output == "1\n"


def test_too_deep_expression_is_reported(ac):
    from repro.beg.codegen import BackendError

    report = discovery_report("x86")
    backend = GeneratedBackend(report.spec)
    expr = "1"
    for _ in range(30):
        expr = f"({expr} + 1)"
    program = compile_to_ir(f"print {expr};")
    with pytest.raises(BackendError):
        backend.compile_ir(program)


def test_reference_interpreter_agrees_with_itself(target):
    report = discovery_report(target)
    program = compile_to_ir("var x; x := 6; print x * 7;")
    assert eval_program(program, bits=report.enquire.word_bits) == "42\n"
