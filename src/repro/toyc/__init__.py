"""``ac`` -- the self-retargeting compiler of paper Figure 1.

A small imperative language ("A") compiled through the intermediate
code of :mod:`repro.beg.ir`.  Its back ends are *generated*: running
architecture discovery against a target yields a machine description,
the BEG-like generator turns it into a code generator, and ``ac`` can
then compile language-A programs to native code for that target --
without anyone ever writing a machine description by hand.
"""

from repro.toyc.compiler import SelfRetargetingCompiler, compile_to_ir

__all__ = ["SelfRetargetingCompiler", "compile_to_ir"]
