"""Unit and property tests for the discovery-side assembly model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.discovery.asmmodel import (
    DImm,
    DInstr,
    DMem,
    DReg,
    DSym,
    DUnknown,
    Slot,
    instantiate,
    split_lines,
    split_operand_texts,
)
from repro.discovery.syntax import DiscoveredSyntax, LoadImmTemplate


def x86ish_syntax():
    syntax = DiscoveredSyntax()
    syntax.comment_char = "#"
    syntax.imm_prefix = "$"
    syntax.registers = {"%eax", "%ebx", "%ebp"}
    syntax.loadimm = LoadImmTemplate("movl", imm_index=0, reg_index=1)
    return syntax


def sparcish_syntax():
    syntax = DiscoveredSyntax()
    syntax.comment_char = "!"
    syntax.imm_prefix = ""
    syntax.registers = {"%l0", "%fp", "%o0"}
    syntax.loadimm = LoadImmTemplate("set", imm_index=0, reg_index=1)
    return syntax


class TestSplitting:
    def test_split_lines_strips_comments(self):
        lines = split_lines("\tadd %o0, 1, %o1 ! note\n! whole-line\n", "!")
        assert len(lines) == 1
        assert lines[0].mnemonic == "add"
        assert lines[0].operand_texts == ["%o0", "1", "%o1"]

    def test_split_lines_collects_labels(self):
        lines = split_lines("L1: L2: nop", "#")
        assert lines[0].labels == ["L1", "L2"]
        assert lines[0].mnemonic == "nop"

    def test_directives_flagged(self):
        lines = split_lines(".globl main", "#")
        assert lines[0].is_directive

    def test_operand_split_respects_brackets(self):
        assert split_operand_texts("[%fp+-8], %o0") == ["[%fp+-8]", "%o0"]
        assert split_operand_texts("a(b,c), d") == ["a(b,c)", "d"]


class TestClassify:
    def test_x86_style(self):
        syntax = x86ish_syntax()
        assert syntax.classify("%eax") == DReg("%eax")
        assert syntax.classify("$-12") == DImm(-12, "$")
        assert syntax.classify("$Lstr0") == DSym("Lstr0", "$")
        assert syntax.classify("-8(%ebp)") == DMem("paren", "%ebp", -8)
        assert syntax.classify("(%eax)") == DMem("paren", "%eax", 0)
        assert syntax.classify("1235") == DMem("absolute", None, 1235)
        assert syntax.classify("printf") == DSym("printf")
        assert syntax.classify(")((") == DUnknown(")((")

    def test_sparc_style(self):
        syntax = sparcish_syntax()
        assert syntax.classify("%l0") == DReg("%l0")
        assert syntax.classify("-4096") == DImm(-4096, "")
        assert syntax.classify("[%fp-8]") == DMem("bracket", "%fp", -8)
        assert syntax.classify("[%fp+-8]") == DMem("bracket", "%fp", -8)
        assert syntax.classify("[%fp+12]") == DMem("bracket", "%fp", 12)
        assert syntax.classify("[%o0]") == DMem("bracket", "%o0", 0)

    def test_unknown_base_not_memory(self):
        syntax = x86ish_syntax()
        assert isinstance(syntax.classify("-8(%zzz)"), DUnknown)

    @given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_immediate_round_trip(self, value):
        syntax = x86ish_syntax()
        op = DImm(value, "$")
        assert syntax.classify(syntax.render_operand(op)) == op

    @given(disp=st.integers(min_value=-(2**16), max_value=2**16))
    def test_paren_memory_round_trip(self, disp):
        syntax = x86ish_syntax()
        op = DMem("paren", "%ebp", disp)
        assert syntax.classify(syntax.render_operand(op)) == op

    @given(disp=st.integers(min_value=-(2**16), max_value=2**16))
    def test_bracket_memory_round_trip(self, disp):
        syntax = sparcish_syntax()
        op = DMem("bracket", "%fp", disp)
        assert syntax.classify(syntax.render_operand(op)) == op

    def test_render_instr_with_labels(self):
        syntax = x86ish_syntax()
        instr = DInstr("addl", [DImm(1, "$"), DReg("%eax")], labels=["L5"])
        assert syntax.render_instr(instr) == "L5:\n\taddl $1, %eax"


class TestInstrModel:
    def test_signature_distinguishes_operand_shapes(self):
        a = DInstr("movl", [DImm(1, "$"), DReg("%eax")])
        b = DInstr("movl", [DMem("paren", "%ebp", -8), DReg("%eax")])
        assert a.signature() != b.signature()

    def test_rename_register_positions(self):
        instr = DInstr("addl", [DReg("%eax"), DReg("%eax")])
        renamed = instr.rename_register("%eax", "%ebx", positions={1})
        assert renamed.operands == [DReg("%eax"), DReg("%ebx")]

    def test_rename_memory_base(self):
        instr = DInstr("movl", [DMem("paren", "%eax", 0), DReg("%ebx")])
        renamed = instr.rename_register("%eax", "%ecx")
        assert renamed.operands[0].base == "%ecx"

    def test_clone_is_deep_enough(self):
        instr = DInstr("nop", [], labels=["L1"])
        clone = instr.clone()
        clone.labels.append("L2")
        assert instr.labels == ["L1"]


class TestTemplates:
    def test_instantiate_replaces_slots(self):
        template = [DInstr("add", [Slot("left"), Slot("right"), Slot("result")])]
        out = instantiate(
            template,
            {"left": DReg("%l0"), "right": DImm(1, ""), "result": DReg("%l1")},
        )
        assert out[0].operands == [DReg("%l0"), DImm(1, ""), DReg("%l1")]

    def test_instantiate_leaves_literals(self):
        template = [DInstr("mov", [Slot("left"), DReg("%o0")])]
        out = instantiate(template, {"left": DReg("%l0")})
        assert out[0].operands[1] == DReg("%o0")

    def test_unbound_slot_raises(self):
        template = [DInstr("add", [Slot("left")])]
        with pytest.raises(KeyError):
            instantiate(template, {})

    def test_instantiate_does_not_mutate_the_template(self):
        template = [DInstr("add", [Slot("left")])]
        instantiate(template, {"left": DReg("%l0")})
        assert isinstance(template[0].operands[0], Slot)
