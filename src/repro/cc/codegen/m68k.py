"""m68k code generator.

Two-address Motorola-style code: accumulator-ish data registers,
``link``/``unlk`` frames, arguments pushed right-to-left with an
explicit ``sub.l #4, sp`` / ``move.l dN, (sp)`` pair, results in ``d0``.
There is no remainder instruction (``%`` expands to divide/multiply/
subtract) and shift immediates only reach 8, so larger constant shifts
are emitted as a chain.
"""

from __future__ import annotations

from repro.cc import cast
from repro.cc.codegen.base import NEGATED, CodeGen
from repro.cc.sema import SizeModel
from repro.errors import CompilerError

_ARITH = {
    "+": "add.l",
    "-": "sub.l",
    "*": "muls.l",
    "/": "divs.l",
    "&": "and.l",
    "|": "or.l",
    "^": "eor.l",
}
_SHIFT = {"<<": "lsl.l", ">>": "asr.l"}
_BCC = {"<": "blt", "<=": "ble", ">": "bgt", ">=": "bge", "==": "beq", "!=": "bne"}


class M68kCodeGen(CodeGen):
    name = "m68k"
    comment = "|"
    reg_pool = ("d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7")
    word_directive = ".long"
    word_align = 4
    sizes = SizeModel(int_size=4, char_size=1, pointer_size=4)

    # -- frame ----------------------------------------------------------

    def assign_frame(self, finfo):
        offset = 8
        for sym in finfo.params:
            sym.storage = offset
            offset += 4
        offset = 0
        for sym in finfo.locals:
            offset -= 4
            sym.storage = offset
        self._temp_base = offset
        self._frame_size = -offset + 4 * self.TEMP_SLOTS

    def emit_prologue(self, finfo):
        self.emit(f"link fp, #-{self._frame_size}")

    def emit_epilogue(self, finfo):
        self.emit("unlk fp")
        self.emit("rts")

    def _slot(self, sym):
        if sym.kind == "global":
            return sym.name
        return f"{sym.storage}(fp)"

    def _temp_slot(self, slot):
        return f"{self._temp_base - 4 * (slot + 1)}(fp)"

    # -- loads/stores -----------------------------------------------------

    def emit_load_imm(self, value):
        reg = self.alloc_reg()
        self.emit(f"move.l #{value}, {reg}")
        return reg

    def emit_load_sym(self, sym):
        reg = self.alloc_reg()
        self.emit(f"move.l {self._slot(sym)}, {reg}")
        return reg

    def emit_store_sym(self, sym, reg):
        self.emit(f"move.l {reg}, {self._slot(sym)}")

    def emit_load_label_addr(self, label):
        reg = self.alloc_reg()
        self.emit(f"move.l #{label}, {reg}")
        return reg

    def emit_load_frame_addr(self, sym):
        reg = self.alloc_reg()
        self.emit("move.l fp, " + reg)
        self.emit(f"add.l #{sym.storage}, {reg}")
        return reg

    def emit_load_indirect(self, addr_reg, size):
        if size == 1:
            dst = self.alloc_reg()
            self.emit(f"clr.l {dst}")
            self.emit(f"move.b ({addr_reg}), {dst}")
            self.free_reg(addr_reg)
            return dst
        self.emit(f"move.l ({addr_reg}), {addr_reg}")
        return addr_reg

    def emit_store_indirect(self, addr_reg, value_reg, size):
        if size != 4:
            raise CompilerError("only word-sized indirect stores are supported")
        self.emit(f"move.l {value_reg}, ({addr_reg})")

    def emit_store_temp(self, slot, reg):
        self.emit(f"move.l {reg}, {self._temp_slot(slot)}")

    def emit_load_temp(self, slot):
        reg = self.alloc_reg()
        self.emit(f"move.l {self._temp_slot(slot)}, {reg}")
        return reg

    # -- arithmetic -------------------------------------------------------

    def _src_operand(self, node):
        imm = self.as_imm(node)
        if imm is not None:
            return f"#{imm}"
        sym = self.as_plain_var(node)
        if sym is not None:
            return self._slot(sym)
        if isinstance(node, cast.StrLit):
            return f"#{self.string_label(node.value)}"
        return None

    def _gen_binary(self, node):
        if node.op == "%":
            return self._gen_mod(node)
        if node.op in ("<<", ">>"):
            return self._gen_shift(node)
        return super()._gen_binary(node)

    def emit_binop(self, op, left_reg, right_node):
        mnemonic = _ARITH[op]
        src = self._src_operand(right_node)
        if src is None:
            right = self.gen_expr(right_node)
            self.emit(f"{mnemonic} {right}, {left_reg}")
            self.free_reg(right)
        else:
            self.emit(f"{mnemonic} {src}, {left_reg}")
        return left_reg

    def emit_binop_rr(self, op, left_reg, right_reg):
        if op in _ARITH:
            self.emit(f"{_ARITH[op]} {right_reg}, {left_reg}")
            self.free_reg(right_reg)
            return left_reg
        if op in _SHIFT:
            self.emit(f"{_SHIFT[op]} {right_reg}, {left_reg}")
            self.free_reg(right_reg)
            return left_reg
        raise CompilerError(f"unsupported operator {op!r} after spilling")

    def _gen_shift(self, node):
        left = self.gen_expr(node.left)
        imm = self.as_imm(node.right)
        mnemonic = _SHIFT[node.op]
        if imm is not None and imm >= 0:
            remaining = imm % 32
            if remaining == 0:
                return left
            while remaining > 0:  # shift immediates reach only 8
                step = min(remaining, 8)
                self.emit(f"{mnemonic} #{step}, {left}")
                remaining -= step
            return left
        right = self.gen_expr(node.right)
        self.emit(f"{mnemonic} {right}, {left}")
        self.free_reg(right)
        return left

    def _gen_mod(self, node):
        # No remainder instruction: a - (a / b) * b.
        left = self.gen_expr(node.left)
        src = self._src_operand(node.right)
        right = None
        if src is None:
            right = self.gen_expr(node.right)
            src = right
        quot = self.alloc_reg()
        self.emit(f"move.l {left}, {quot}")
        self.emit(f"divs.l {src}, {quot}")
        self.emit(f"muls.l {src}, {quot}")
        self.emit(f"sub.l {quot}, {left}")
        self.free_reg(quot)
        if right is not None:
            self.free_reg(right)
        return left

    def emit_unop(self, op, reg):
        self.emit(f"{'neg.l' if op == '-' else 'not.l'} {reg}")
        return reg

    # -- calls ------------------------------------------------------------

    def emit_call(self, name, args, want_result=True):
        for arg in reversed(args):
            src = self._src_operand(arg)
            if src is None or not src.startswith("#"):
                reg = self.gen_expr(arg)
                src = reg
            else:
                reg = None
            self.emit("sub.l #4, sp")
            self.emit(f"move.l {src}, (sp)")
            if reg is not None:
                self.free_reg(reg)
        self.emit(f"jsr {name}")
        if args:
            self.emit(f"add.l #{4 * len(args)}, sp")
        if not want_result:
            return None
        dst = self.alloc_reg(exclude=("d0",))
        self.emit(f"move.l d0, {dst}")
        return dst

    def emit_set_retval(self, reg):
        if reg != "d0":
            self.emit(f"move.l {reg}, d0")

    # -- control flow -------------------------------------------------------

    def emit_jump(self, label):
        self.emit(f"bra {label}")

    def emit_cmp_branch(self, op, left_node, right_node, label):
        left = self.gen_expr(left_node)
        src = self._src_operand(right_node)
        right = None
        if src is None:
            right = self.gen_expr(right_node)
            src = right
        self.emit(f"cmp.l {src}, {left}")
        self.free_reg(left)
        if right is not None:
            self.free_reg(right)
        self.emit(f"{_BCC[NEGATED[op]]} {label}")

    def emit_branch_if_zero(self, reg, label):
        self.emit(f"tst.l {reg}")
        self.free_reg(reg)
        self.emit(f"beq {label}")
