"""E10/E11 (paper Figures 10 and 11): data-flow graphs and matching."""

from repro.discovery.dfg import build_dfg
from repro.discovery.graphmatch import match_binary
from tests.discovery.conftest import sample_named


class TestFig10Graphs:
    def test_mips_mul_graph_shape(self, mips_report):
        """Fig 10(a-b): @L1.b and @L1.c flow through the lw's into mul,
        and mul's result flows through sw into @L1.a."""
        sample = sample_named(mips_report, "int_mul_a_bOPc")
        graph = build_dfg(sample, mips_report.addr_map)
        mul_idx = next(
            i for i, instr in enumerate(sample.region) if instr.mnemonic == "mul"
        )
        b_desc = graph.descendants(("var", "b"))
        c_desc = graph.descendants(("var", "c"))
        assert ("instr", mul_idx) in b_desc
        assert ("instr", mul_idx) in c_desc
        assert ("var", "a") in graph.descendants(("instr", mul_idx))

    def test_x86_div_graph_exposes_implicit_arguments(self, x86_report):
        """Fig 10(c-d): the implicit %eax edges are explicit in the
        graph (idivl reads and modifies %eax)."""
        sample = sample_named(x86_report, "int_div_a_bOPc")
        graph = build_dfg(sample, x86_report.addr_map)
        # b reaches @a through the whole pipe.
        assert ("var", "a") in graph.descendants(("var", "b"))

    def test_sparc_mul_graph_routes_through_the_call(self, sparc_report):
        sample = sample_named(sparc_report, "int_mul_a_bOPc")
        graph = build_dfg(sample, sparc_report.addr_map)
        call_idx = sample.info.call_like[0]
        assert ("instr", call_idx) in graph.descendants(("var", "b"))
        assert ("var", "a") in graph.descendants(("instr", call_idx))

    def test_dot_export_is_well_formed(self, report):
        sample = sample_named(report, "int_add_a_bOPc")
        graph = build_dfg(sample, report.addr_map)
        dot = graph.to_dot("sample")
        assert dot.startswith("digraph sample {")
        assert dot.rstrip().endswith("}")
        assert "@L1.a" in dot
        assert "->" in dot

    def test_register_edges_carry_register_tags(self, mips_report):
        sample = sample_named(mips_report, "int_add_a_bOPc")
        graph = build_dfg(sample, mips_report.addr_map)
        tags = {t for _s, _d, t in graph.edges if t}
        assert "$9" in tags or "$10" in tags


class TestFig11Matching:
    def test_mips_p_node_is_the_mul(self, mips_report):
        """Fig 11(a): P = mul; lw loads the r-values, sw stores."""
        sample = sample_named(mips_report, "int_mul_a_bOPc")
        graph = build_dfg(sample, mips_report.addr_map)
        result = match_binary(sample, graph)
        mul_idx = next(
            i for i, instr in enumerate(sample.region) if instr.mnemonic == "mul"
        )
        assert result.p_node == ("instr", mul_idx)
        assert result.roles[mul_idx] == "compute"
        loads = [
            i
            for i, instr in enumerate(sample.region)
            if instr.mnemonic == "lw"
        ]
        for i in loads:
            assert result.roles.get(i) == "load"

    def test_vax_single_instruction_is_both_p_and_q(self, vax_report):
        """Fig 11(d): VAX addition is one addl3 node."""
        sample = sample_named(vax_report, "int_add_a_bOPc")
        graph = build_dfg(sample, vax_report.addr_map)
        result = match_binary(sample, graph)
        add_idx = next(
            i for i, instr in enumerate(sample.region) if instr.mnemonic == "addl3"
        )
        assert result.p_node == ("instr", add_idx)
        assert result.roles[add_idx] == "compute"

    def test_store_role_assigned(self, alpha_report):
        sample = sample_named(alpha_report, "int_add_a_bOPc")
        graph = build_dfg(sample, alpha_report.addr_map)
        result = match_binary(sample, graph)
        stq_idx = next(
            i for i, instr in enumerate(sample.region) if instr.mnemonic == "stq"
        )
        assert result.roles.get(stq_idx) == "store"


class TestAddressMap:
    def test_three_distinct_variable_slots(self, report):
        slots = report.addr_map.slots
        assert set(slots) == {"a", "b", "c"}
        assert len(set(slots.values())) == 3

    def test_slots_resolve_memory_operands(self, report):
        from repro.discovery.asmmodel import DMem

        kind, base, disp = report.addr_map.slots["b"]
        assert report.addr_map.var_of(DMem(kind, base, disp)) == "b"
        assert report.addr_map.var_of(DMem(kind, base, disp + 1024)) is None
