"""Discovery-test fixtures.

Full architecture discovery takes a few seconds per target; the
``report`` fixture runs it once per target per session and caches the
result, so the per-figure experiment tests stay fast.
"""

import pytest

from repro.machines.machine import RemoteMachine
from repro.discovery.driver import ArchitectureDiscovery

_CACHE = {}

TARGETS = ("x86", "mips", "sparc", "alpha", "vax", "m68k")


def discovery_report(target):
    if target not in _CACHE:
        machine = RemoteMachine(target)
        _CACHE[target] = ArchitectureDiscovery(machine).run()
    return _CACHE[target]


@pytest.fixture(params=TARGETS, scope="session")
def report(request):
    """Parametrized full-discovery report, one per simulated target."""
    return discovery_report(request.param)


@pytest.fixture(scope="session")
def x86_report():
    return discovery_report("x86")


@pytest.fixture(scope="session")
def mips_report():
    return discovery_report("mips")


@pytest.fixture(scope="session")
def sparc_report():
    return discovery_report("sparc")


@pytest.fixture(scope="session")
def alpha_report():
    return discovery_report("alpha")


@pytest.fixture(scope="session")
def vax_report():
    return discovery_report("vax")


@pytest.fixture(scope="session")
def m68k_report():
    return discovery_report("m68k")


def sample_named(report, name):
    for sample in report.corpus.samples:
        if sample.name == name:
            return sample
    raise LookupError(name)
