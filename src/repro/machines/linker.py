"""Symbolic linker for the simulated targets.

Combines object files, lays out the data section, and resolves symbolic
references: code labels become instruction indices, data labels become
absolute addresses, and runtime symbols (``printf``, ``exit``, the SPARC
``.mul`` family) become negative builtin indices.

Linking never mutates its input objects -- the discovery unit links the
same ``init.o`` against hundreds of mutated ``main.o`` files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkerError
from repro.machines.assembler import TextInstr
from repro.machines.executor import BUILTIN_BASE, Memory
from repro.machines.operands import Imm, Lab, Mem, Sym


@dataclass
class Program:
    """A linked, executable program."""

    isa: object
    instrs: list
    labels: dict
    data_labels: dict
    memory_image: Memory
    builtins: dict = field(default_factory=dict)
    builtin_names: dict = field(default_factory=dict)


def link(objects, isa, runtime):
    """Link *objects* (assembled for *isa*) against *runtime* builtins.

    ``runtime`` maps builtin names to callables ``fn(state, abi, isa)``.
    """
    if not objects:
        raise LinkerError("nothing to link")
    for obj in objects:
        if obj.isa_name != isa.name:
            raise LinkerError(
                f"object assembled for {obj.isa_name!r}, linking for {isa.name!r}"
            )

    renames = [_rename_map(obj, oid) for oid, obj in enumerate(objects)]

    # Pass 1: global code labels.
    code_labels = {}
    base = 0
    for obj, rename in zip(objects, renames):
        for name, index in obj.text_labels.items():
            local_index = len(obj.instrs) if index is None else index
            globalname = rename[name]
            if globalname in code_labels:
                raise LinkerError(f"duplicate symbol {globalname!r}")
            code_labels[globalname] = base + local_index
        base += len(obj.instrs)

    # Pass 2: data layout.
    memory = Memory(isa.endian)
    data_labels = {}
    cursor = isa.data_start
    for obj, rename in zip(objects, renames):
        for entry in obj.data:
            if entry.kind == "align":
                align = max(1, entry.value)
                cursor = (cursor + align - 1) // align * align
            for label in entry.labels:
                globalname = rename[label]
                if globalname in data_labels or globalname in code_labels:
                    raise LinkerError(f"duplicate symbol {globalname!r}")
                data_labels[globalname] = cursor
            if entry.kind == "long":
                size, values = entry.value
                # Values may be symbolic; patch in pass 3.  Reserve space now.
                cursor += size * len(values)
            elif entry.kind == "byte":
                memory.store_bytes(cursor, bytes(v & 0xFF for v in entry.value))
                cursor += len(entry.value)
            elif entry.kind == "asciz":
                data = entry.value.encode("latin-1")
                memory.store_bytes(cursor, data)
                cursor += len(data)
            elif entry.kind == "space":
                cursor += entry.value
            elif entry.kind == "align":
                pass
            else:
                raise LinkerError(f"unknown data kind {entry.kind!r}")

    builtin_ids = {}
    for i, name in enumerate(sorted(runtime)):
        builtin_ids[name] = BUILTIN_BASE - i

    def resolve_sym(sym, context):
        if sym.name in code_labels:
            return code_labels[sym.name]
        if sym.name in data_labels:
            return data_labels[sym.name]
        if sym.name in builtin_ids:
            return builtin_ids[sym.name]
        raise LinkerError(f"undefined symbol {sym.name!r} ({context})")

    # Pass 3: emit resolved instructions and patch symbolic data words.
    instrs = []
    for obj, rename in zip(objects, renames):
        for instr in obj.instrs:
            operands = [
                _resolve_operand(op, rename, resolve_sym, instr) for op in instr.operands
            ]
            instrs.append(
                TextInstr(instr.mnemonic, instr.form, operands, instr.lineno, instr.text)
            )

    cursor = isa.data_start
    for obj, rename in zip(objects, renames):
        for entry in obj.data:
            if entry.kind == "align":
                align = max(1, entry.value)
                cursor = (cursor + align - 1) // align * align
            if entry.kind == "long":
                size, values = entry.value
                for value in values:
                    if isinstance(value, Sym):
                        value = resolve_sym(_renamed(value, rename), "data word")
                    memory.store(cursor, value, size)
                    cursor += size
            elif entry.kind == "byte":
                cursor += len(entry.value)
            elif entry.kind == "asciz":
                cursor += len(entry.value)
            elif entry.kind == "space":
                cursor += entry.value

    builtins = {}
    builtin_names = {}
    for name, pc in builtin_ids.items():
        fn = runtime[name]
        builtins[pc] = _bind_builtin(fn, isa)
        builtin_names[name] = pc

    labels = dict(code_labels)
    return Program(
        isa=isa,
        instrs=instrs,
        labels=labels,
        data_labels=data_labels,
        memory_image=memory,
        builtins=builtins,
        builtin_names=builtin_names,
    )


def _bind_builtin(fn, isa):
    def handler(state):
        fn(state, isa.abi, isa)

    return handler


def _rename_map(obj, oid):
    """Non-exported labels get an object-unique suffix, like a real linker
    treating them as local symbols."""
    rename = {}
    for name in obj.local_label_names():
        if name in obj.exports:
            rename[name] = name
        else:
            rename[name] = f"{name}@{oid}"
    return rename


def _renamed(sym, rename):
    return Sym(rename.get(sym.name, sym.name))


def _resolve_operand(op, rename, resolve_sym, instr):
    context = f"{instr.mnemonic} at line {instr.lineno}"
    if isinstance(op, Lab) and isinstance(op.target, Sym):
        return Lab(resolve_sym(_renamed(op.target, rename), context))
    if isinstance(op, Imm) and isinstance(op.value, Sym):
        return Imm(resolve_sym(_renamed(op.value, rename), context))
    if isinstance(op, Mem) and isinstance(op.disp, Sym):
        return Mem(resolve_sym(_renamed(op.disp, rename), context), op.base)
    return op
