"""The cross-target execution battery: every C feature on every target.

Each case is one distinct language feature/code-generation path; running
them against all five simulated targets is the substrate-correctness
baseline the discovery experiments stand on.
"""

import pytest

from tests.conftest import run_c

CASES = [
    ("add", 'main(){int b,c,a; b=5; c=6; a=b+c; printf("%i\\n", a); exit(0);}', "11\n"),
    ("add_imm", 'main(){int b,a; b=5; a=b+7; printf("%i\\n", a); exit(0);}', "12\n"),
    ("mul", 'main(){int b,c,a; b=313; c=109; a=b*c; printf("%i\\n", a); exit(0);}', "34117\n"),
    ("div", 'main(){int b,c,a; b=34117; c=109; a=b/c; printf("%i\\n", a); exit(0);}', "313\n"),
    ("mod", 'main(){int b,c,a; b=34118; c=109; a=b%c; printf("%i\\n", a); exit(0);}', "1\n"),
    (
        "negative_div",
        'main(){int b,c,a; b=-7; c=2; a=b/c; printf("%i\\n", a); a=b%c; printf("%i\\n", a); exit(0);}',
        "-3\n-1\n",
    ),
    ("sub", 'main(){int b,c,a; b=5; c=16; a=b-c; printf("%i\\n", a); exit(0);}', "-11\n"),
    ("sub_rev_imm", 'main(){int b,a; b=5; a=7-b; printf("%i\\n", a); exit(0);}', "2\n"),
    ("shl_const", 'main(){int b,a; b=503; a=b<<3; printf("%i\\n", a); exit(0);}', "4024\n"),
    ("shl_var", 'main(){int b,c,a; b=503; c=4; a=b<<c; printf("%i\\n", a); exit(0);}', "8048\n"),
    ("shr_const", 'main(){int b,a; b=-504; a=b>>3; printf("%i\\n", a); exit(0);}', "-63\n"),
    ("shr_var", 'main(){int b,c,a; b=-504; c=3; a=b>>c; printf("%i\\n", a); exit(0);}', "-63\n"),
    ("and", 'main(){int b,c,a; b=60; c=23; a=b&c; printf("%i\\n", a); exit(0);}', "20\n"),
    ("or", 'main(){int b,c,a; b=40; c=23; a=b|c; printf("%i\\n", a); exit(0);}', "63\n"),
    ("xor", 'main(){int b,c,a; b=60; c=23; a=b^c; printf("%i\\n", a); exit(0);}', "43\n"),
    ("neg", 'main(){int b,a; b=37; a=-b; printf("%i\\n", a); exit(0);}', "-37\n"),
    ("compl", 'main(){int b,a; b=37; a=~b; printf("%i\\n", a); exit(0);}', "-38\n"),
    ("if_lt_taken", 'main(){int b,c,a; b=5; c=6; a=7; if (b<c) a=8; printf("%i\\n", a); exit(0);}', "8\n"),
    ("if_lt_not_taken", 'main(){int b,c,a; b=6; c=6; a=7; if (b<c) a=8; printf("%i\\n", a); exit(0);}', "7\n"),
    ("if_else", 'main(){int b,c,a; b=6; c=6; if (b==c) a=8; else a=9; printf("%i\\n", a); exit(0);}', "8\n"),
    (
        "all_comparisons",
        'main(){int a; a=0; if (3<=3) a=a+1; if (4>3) a=a+2; if (3>=4) a=a+4;'
        ' if (3!=4) a=a+8; if (3<3) a=a+16; if (3==3) a=a+32; printf("%i\\n", a); exit(0);}',
        "43\n",
    ),
    ("truthiness", 'main(){int z,a; z=5; a=1; if (z) a=2; printf("%i\\n", a); exit(0);}', "2\n"),
    (
        "call_two_args",
        'int P(int x, int y){ return x*y+1; } main(){int b,a; b=9; a=P(b,3); printf("%i\\n", a); exit(0);}',
        "28\n",
    ),
    (
        "nested_calls",
        'int Q(int x){ return x+1; } main(){int a; a = Q(Q(5)) + Q(2); printf("%i\\n", a); exit(0);}',
        "10\n",
    ),
    ("goto_forward", 'main(){int a; a=1; goto End; a=2; End: printf("%i\\n", a); exit(0);}', "1\n"),
    (
        "goto_backward",
        'main(){int i; i=0; Top: i=i+1; if (i<3) goto Top; printf("%i\\n", i); exit(0);}',
        "3\n",
    ),
    (
        "while_loop",
        'main(){int i,s; i=0; s=0; while (i<5) { s=s+i; i=i+1; } printf("%i\\n", s); exit(0);}',
        "10\n",
    ),
    (
        "pointer_out_param",
        'void Init(int *n){ *n = 42; } main(){int a; Init(&a); printf("%i\\n", a); exit(0);}',
        "42\n",
    ),
    (
        "three_pointer_params",
        "void Init(int *n, int *o, int *p){ *n=-1; *o=313; *p=109; }"
        ' main(){int a,b,c; Init(&a,&b,&c); printf("%i %i %i\\n", a, b, c); exit(0);}',
        "-1 313 109\n",
    ),
    (
        "global_variable",
        'int z1; void setz(){ z1 = 77; } main(){ setz(); printf("%i\\n", z1); exit(0);}',
        "77\n",
    ),
    (
        "global_initialised",
        'int g = 31; main(){ printf("%i\\n", g+1); exit(0);}',
        "32\n",
    ),
    (
        "extern_global",
        None,  # handled specially: two translation units
        "5\n",
    ),
    ("neg_const_store", 'main(){int a; a=-1; printf("%i\\n", a); exit(0);}', "-1\n"),
    (
        "compound_expr",
        'main(){int a,b,c; b=10; c=3; a = (b+c)*(b-c) - b/c; printf("%i\\n", a); exit(0);}',
        "88\n",
    ),
    (
        "nested_division",
        'main(){int a,b,c; b=100; c=7; a = b/(c/2); printf("%i\\n", a); exit(0);}',
        "33\n",
    ),
    (
        "pointer_read",
        'main(){int a,b; int *p; a=9; p=&a; b=*p; printf("%i\\n", b); exit(0);}',
        "9\n",
    ),
    (
        "deref_assign_through_local",
        'main(){int a; int *p; p=&a; *p=13; printf("%i\\n", a); exit(0);}',
        "13\n",
    ),
    (
        "recursion",
        "int F(int n){ if (n<2) return 1; return n*F(n-1); }"
        ' main(){ printf("%i\\n", F(6)); exit(0);}',
        "720\n",
    ),
    (
        "large_constants",
        'main(){int a; a=34117; printf("%i\\n", a<<8); exit(0);}',
        "8733952\n",
    ),
    (
        "octal_and_hex_literals",
        'main(){ printf("%i %i\\n", 0x10, 010); exit(0);}',
        "16 8\n",
    ),
]


@pytest.mark.parametrize("name,source,expected", CASES, ids=[c[0] for c in CASES])
def test_c_program(any_machine, name, source, expected):
    if source is None:
        _extern_case(any_machine, expected)
        return
    result = run_c(any_machine, source)
    assert result.ok, f"{any_machine.target}/{name}: {result.error}"
    assert result.output == expected


def _extern_case(machine, expected):
    unit1 = 'extern int shared; main(){ shared = 5; show(); exit(0); }'
    unit2 = 'int shared; void show(){ printf("%i\\n", shared); }'
    objects = [machine.assemble(machine.compile_c(u)) for u in (unit1, unit2)]
    result = machine.execute(machine.link(objects))
    assert result.ok, result.error
    assert result.output == expected


def test_include_header(any_machine):
    headers = {"decls.h": "extern int z1;"}
    unit1 = '#include "decls.h"\nmain(){ z1 = 6; printf("%i\\n", z1); exit(0); }'
    unit2 = "int z1;"
    objects = [
        any_machine.assemble(any_machine.compile_c(unit1, headers)),
        any_machine.assemble(any_machine.compile_c(unit2)),
    ]
    result = any_machine.execute(any_machine.link(objects))
    assert result.output == "6\n"


def test_sizeof_matches_target(any_machine):
    source = 'main(){ printf("%i %i %i\\n", sizeof(int), sizeof(char), sizeof(int*)); exit(0);}'
    result = run_c(any_machine, source)
    ints, chars, ptrs = map(int, result.output.split())
    assert chars == 1
    assert ints in (4, 8)
    assert ptrs == ints


def test_char_pointer_probe_reveals_endianness(any_machine):
    source = (
        "main(){int a; char *p; a=258; p=(char*)&a;"
        ' printf("%i\\n", *p); exit(0);}'
    )
    result = run_c(any_machine, source)
    low_byte_first = result.output == "2\n"
    expected_little = any_machine.target in ("x86", "alpha", "vax")
    assert low_byte_first == expected_little
