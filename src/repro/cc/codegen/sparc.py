"""SPARC code generator.

Reproduces the SPARC idioms the paper studies: procedure actuals staged
into ``%o0..%o5`` (implicit call arguments, Figure 4a), the final
argument move placed in the ``call`` delay slot (Figure 4c),
multiplication via ``call .mul, 2`` with the result in ``%o0``
(Figure 15e), and 13-bit immediates with ``set`` for anything larger.
"""

from __future__ import annotations

import re

from repro.cc.codegen.base import CodeGen
from repro.cc.sema import SizeModel
from repro.errors import CompilerError

_ARITH = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "sra"}
_SOFTWARE = {"*": ".mul", "/": ".div", "%": ".rem"}
_BFALSE = {"<": "bge", "<=": "bg", ">": "ble", ">=": "bl", "==": "bne", "!=": "be"}
_IMM13 = (-4096, 4095)

#: instructions safe to hoist into a call's delay slot (a register move
#: that only feeds the call's implicit arguments)
_DELAY_RE = re.compile(r"^\t(mov|set)\s+.*,\s*%o[0-5]$")


class SparcCodeGen(CodeGen):
    name = "sparc"
    comment = "!"
    reg_pool = ("%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7")
    word_directive = ".long"
    word_align = 4
    sizes = SizeModel(int_size=4, char_size=1, pointer_size=4)

    # -- frame ----------------------------------------------------------

    def assign_frame(self, finfo):
        offset = -12  # [-4]=saved %fp, [-8]=saved %o7
        for sym in finfo.params + finfo.locals:
            sym.storage = offset
            offset -= 4
        self._temp_base = offset
        self._frame_size = 8 + 4 * (
            len(finfo.params) + len(finfo.locals) + self.TEMP_SLOTS
        )

    def emit_prologue(self, finfo):
        self.emit("st %fp, [%sp-4]")
        self.emit("st %o7, [%sp-8]")
        self.emit("mov %sp, %fp")
        self.emit(f"sub %sp, {self._frame_size}, %sp")
        if len(finfo.params) > 6:
            raise CompilerError("more than 6 parameters are unsupported")
        for i, sym in enumerate(finfo.params):
            self.emit(f"st %o{i}, [%fp{sym.storage}]")

    def emit_epilogue(self, finfo):
        self.emit("mov %fp, %sp")
        self.emit("ld [%sp-8], %o7")
        self.emit("ld [%sp-4], %fp")
        self.emit("retl")

    def _slot(self, sym):
        return f"[%fp{sym.storage}]"

    def _temp_slot(self, slot):
        return f"[%fp{self._temp_base - 4 * slot}]"

    def _fits13(self, value):
        return _IMM13[0] <= value <= _IMM13[1]

    # -- loads/stores -----------------------------------------------------

    def emit_load_imm(self, value):
        reg = self.alloc_reg()
        if self._fits13(value):
            self.emit(f"mov {value}, {reg}")
        else:
            self.emit(f"set {value}, {reg}")
        return reg

    def emit_load_sym(self, sym):
        reg = self.alloc_reg()
        if sym.kind == "global":
            addr = self.alloc_reg()
            self.emit(f"set {sym.name}, {addr}")
            self.emit(f"ld [{addr}], {reg}")
            self.free_reg(addr)
        else:
            self.emit(f"ld {self._slot(sym)}, {reg}")
        return reg

    def emit_store_sym(self, sym, reg):
        if sym.kind == "global":
            addr = self.alloc_reg()
            self.emit(f"set {sym.name}, {addr}")
            self.emit(f"st {reg}, [{addr}]")
            self.free_reg(addr)
        else:
            self.emit(f"st {reg}, {self._slot(sym)}")

    def emit_load_label_addr(self, label):
        reg = self.alloc_reg()
        self.emit(f"set {label}, {reg}")
        return reg

    def emit_load_frame_addr(self, sym):
        reg = self.alloc_reg()
        self.emit(f"add %fp, {sym.storage}, {reg}")
        return reg

    def emit_load_indirect(self, addr_reg, size):
        mnemonic = "ldub" if size == 1 else "ld"
        self.emit(f"{mnemonic} [{addr_reg}], {addr_reg}")
        return addr_reg

    def emit_store_indirect(self, addr_reg, value_reg, size):
        if size != 4:
            raise CompilerError("only word-sized indirect stores are supported")
        self.emit(f"st {value_reg}, [{addr_reg}]")

    def emit_store_temp(self, slot, reg):
        self.emit(f"st {reg}, {self._temp_slot(slot)}")

    def emit_load_temp(self, slot):
        reg = self.alloc_reg()
        self.emit(f"ld {self._temp_slot(slot)}, {reg}")
        return reg

    # -- arithmetic -------------------------------------------------------

    def emit_binop(self, op, left_reg, right_node):
        if op in _SOFTWARE:
            imm = self.as_imm(right_node)
            if imm is not None:
                right = self.emit_load_imm(imm)
            else:
                right = self.gen_expr(right_node)
            return self._software_binop(op, left_reg, right)
        imm = self.as_imm(right_node)
        if imm is not None and self._fits13(imm) and (op not in ("<<", ">>") or 0 <= imm <= 31):
            result = self.alloc_reg()
            self.emit(f"{_ARITH[op]} {left_reg}, {imm}, {result}")
            self.free_reg(left_reg)
            return result
        if imm is not None:
            right = self.emit_load_imm(imm)
        else:
            right = self.gen_expr(right_node)
        return self.emit_binop_rr(op, left_reg, right)

    def emit_binop_rr(self, op, left_reg, right_reg):
        if op in _SOFTWARE:
            return self._software_binop(op, left_reg, right_reg)
        result = self.alloc_reg()
        self.emit(f"{_ARITH[op]} {left_reg}, {right_reg}, {result}")
        self.free_reg(left_reg)
        self.free_reg(right_reg)
        return result

    def _software_binop(self, op, left_reg, right_reg):
        """Multiplication/division through the software routines, with
        implicit %o0/%o1 arguments and the %o0 result (Figure 15e)."""
        self.emit(f"mov {left_reg}, %o0")
        self.emit(f"mov {right_reg}, %o1")
        self.free_reg(left_reg)
        self.free_reg(right_reg)
        self._emit_call_with_delay(_SOFTWARE[op], 2)
        result = self.alloc_reg()
        self.emit(f"mov %o0, {result}")
        return result

    def emit_unop(self, op, reg):
        mnemonic = "neg" if op == "-" else "not"
        result = self.alloc_reg()
        self.emit(f"{mnemonic} {reg}, {result}")
        self.free_reg(reg)
        return result

    # -- calls ------------------------------------------------------------

    def _emit_call_with_delay(self, name, nargs):
        """Emit a call, hoisting the preceding %o-register move into the
        delay slot when possible (paper Figure 4c), else padding with nop."""
        filler = None
        if self.text_lines and _DELAY_RE.match(self.text_lines[-1]):
            filler = self.text_lines.pop()
        self.emit(f"call {name}, {nargs}")
        if filler is not None:
            self.text_lines.append(filler)
        else:
            self.emit("nop")

    def emit_call(self, name, args, want_result=True):
        if len(args) > 6:
            raise CompilerError("more than 6 call arguments are unsupported")
        regs = self.eval_args(args)
        for i, reg in enumerate(regs):
            self.emit(f"mov {reg}, %o{i}")
            self.free_reg(reg)
        self._emit_call_with_delay(name, len(args))
        if not want_result:
            return None
        dst = self.alloc_reg()
        self.emit(f"mov %o0, {dst}")
        return dst

    def emit_set_retval(self, reg):
        self.emit(f"mov {reg}, %o0")

    # -- control flow -------------------------------------------------------

    def emit_jump(self, label):
        self.emit(f"ba {label}")

    def emit_cmp_branch(self, op, left_node, right_node, label):
        left = self.gen_expr(left_node)
        imm = self.as_imm(right_node)
        if imm is not None and self._fits13(imm):
            self.emit(f"cmp {left}, {imm}")
        else:
            right = self.gen_expr(right_node)
            self.emit(f"cmp {left}, {right}")
            self.free_reg(right)
        self.free_reg(left)
        self.emit(f"{_BFALSE[op]} {label}")

    def emit_branch_if_zero(self, reg, label):
        self.emit(f"cmp {reg}, 0")
        self.free_reg(reg)
        self.emit(f"be {label}")
