"""Assembler behaviour: parsing, rejection, probing hooks."""

import pytest

from repro.errors import AssemblerError
from repro.machines.assembler import split_operands
from repro.machines.machine import RemoteMachine
from repro.machines.operands import Imm, Mem, Reg


@pytest.fixture(scope="module")
def x86():
    return RemoteMachine("x86")


@pytest.fixture(scope="module")
def sparc():
    return RemoteMachine("sparc")


def test_split_operands_top_level_commas_only():
    assert split_operands("a, b, c") == ["a", "b", "c"]
    assert split_operands("-12(%ebp), %eax") == ["-12(%ebp)", "%eax"]
    assert split_operands("[%fp+-8], %o0") == ["[%fp+-8]", "%o0"]
    assert split_operands("") == []


def test_unknown_mnemonic_rejected(x86):
    assert not x86.assembles_ok(".text\nfrobnicate %eax\n")


def test_unknown_register_rejected(x86):
    assert not x86.assembles_ok(".text\nmovl %foo, %eax\n")


def test_wrong_operand_count_rejected(x86):
    assert not x86.assembles_ok(".text\nmovl %eax\n")


def test_immediate_to_immediate_rejected(x86):
    assert not x86.assembles_ok(".text\nmovl $1, $2\n")


def test_comment_char_is_target_specific(x86, sparc):
    assert x86.assembles_ok(".text\nnop # junk ] here\n")
    assert not x86.assembles_ok(".text\nnop ! junk ] here\n")
    assert sparc.assembles_ok(".text\nnop ! junk ] here\n")
    assert not sparc.assembles_ok(".text\nnop # junk ] here\n")


def test_sparc_immediate_range_boundaries(sparc):
    assert sparc.assembles_ok(".text\nadd %o0, 4095, %o1\n")
    assert sparc.assembles_ok(".text\nadd %o0, -4096, %o1\n")
    assert not sparc.assembles_ok(".text\nadd %o0, 4096, %o1\n")
    assert not sparc.assembles_ok(".text\nadd %o0, -4097, %o1\n")


def test_hex_literals_accepted(x86):
    assert x86.assembles_ok(".text\nmovl $0x10, %eax\n")


def test_duplicate_label_rejected(x86):
    assert not x86.assembles_ok(".text\nfoo: nop\nfoo: nop\n")


def test_label_and_instruction_on_one_line(x86):
    handle = x86.assemble(".text\nfoo: nop\n")
    assert handle._obj.text_labels["foo"] == 0


def test_label_alone_points_at_next_instruction(x86):
    obj = x86.assemble(".text\nfoo:\nbar:\nnop\n")._obj
    assert obj.text_labels == {"foo": 0, "bar": 0}


def test_data_directives(x86):
    obj = x86.assemble('.data\nv: .long 5, 6\ns: .asciz "hi"\nb: .byte 1,2\n')._obj
    kinds = [entry.kind for entry in obj.data]
    assert kinds == ["long", "asciz", "byte"]


def test_instruction_in_data_section_rejected(x86):
    with pytest.raises(AssemblerError):
        x86.assemble(".data\nnop\n")


def test_operand_objects(x86):
    obj = x86.assemble(".text\nmovl $5, %eax\nmovl -12(%ebp), %eax\n")._obj
    first, second = obj.instrs
    assert first.operands == [Imm(5), Reg("%eax")]
    assert second.operands == [Mem(-12, "%ebp"), Reg("%eax")]


def test_assembly_error_counts_in_stats(x86):
    before = x86.stats.assembly_errors
    with pytest.raises(AssemblerError):
        x86.assemble(".text\nbogus\n")
    assert x86.stats.assembly_errors == before + 1


def test_register_constrained_operand():
    x86 = RemoteMachine("x86")
    assert x86.assembles_ok(".text\nsall %ecx, %eax\n")
    assert not x86.assembles_ok(".text\nsall %ebx, %eax\n")
