#!/usr/bin/env python3
"""Assembler syntax discovery, step by step (paper sections 2-3.1).

    python examples/assembler_probe.py [target]

Shows the accept/reject probing techniques in isolation: the comment
character found by appending an erroneous line, the literal bases found
by scanning for 1235 and rewriting it, the load-immediate template, the
register universe found by assemble+link probing, and the immediate
range of an arithmetic instruction found by binary search -- the paper's
SPARC result: add takes [-4096, 4095].
"""

import sys

sys.path.insert(0, "src")

from repro.machines.machine import RemoteMachine, target_names
from repro.discovery import probe
from repro.discovery.asmmodel import DImm, DReg
from repro.discovery.generator import SampleGenerator
from repro.discovery.syntax import DiscoveredSyntax


def main():
    target = sys.argv[1] if len(sys.argv) > 1 else "sparc"
    if target not in target_names():
        raise SystemExit(f"unknown target {target!r}; pick one of {target_names()}")
    machine = RemoteMachine(target)
    log = probe.ProbeLog()
    syntax = DiscoveredSyntax()

    syntax.comment_char = probe.discover_comment_char(machine, log)
    print(f"comment character: {syntax.comment_char!r}  ({log.comment_probes} probes)")

    probe.discover_literal_syntax(machine, syntax, log)
    print(f"immediate prefix:  {syntax.imm_prefix!r}, compiler emits base {syntax.emitted_base}")
    for base, accepted in sorted(syntax.accepted_bases.items()):
        print(f"  assembler accepts {base:10s}: {'yes' if accepted else 'no'}")

    probe.discover_loadimm(machine, syntax, log)
    example = syntax.render_instr(syntax.load_imm_instr(1235, sorted(syntax.registers)[0]))
    print(f"load-immediate:    {example.strip()}")

    print("generating a few samples to scan for register names...")
    corpus = SampleGenerator(machine, syntax, seed=3).generate(
        word_bits=64 if target == "alpha" else 32, extra_value_rounds=0
    )
    asms = [s.asm_text for s in corpus.samples if s.usable]
    probe.discover_registers(machine, syntax, asms, log)
    print(f"registers ({len(syntax.registers)}, {log.register_probes} probes):")
    print("  " + " ".join(sorted(syntax.registers)))

    # Immediate-range probing on an instruction taken from the samples.
    from repro.discovery.asmmodel import split_lines
    from repro.discovery.lexer import tokenize_region

    probe_instr = None
    for sample in corpus.samples:
        if not sample.usable:
            continue
        for line in split_lines(sample.asm_text, syntax.comment_char):
            if line.mnemonic and not line.is_directive:
                instrs = tokenize_region([line.text], syntax)
                for instr in instrs:
                    imm_positions = [
                        k for k, op in enumerate(instr.operands) if isinstance(op, DImm)
                    ]
                    if imm_positions and any(
                        isinstance(op, DReg) for op in instr.operands
                    ):
                        probe_instr = (instr, imm_positions[0])
                        break
            if probe_instr:
                break
        if probe_instr:
            break
    if probe_instr:
        instr, position = probe_instr
        lo, hi = probe.immediate_range(machine, syntax, instr, position, log)
        print(
            f"immediate range of `{syntax.render_instr(instr).strip()}` "
            f"operand {position}: [{lo}, {hi}]  ({log.range_probes} probes)"
        )
    print(f"\nassembler interactions: {machine.stats.assemblies} "
          f"({machine.stats.assembly_errors} rejections)")


if __name__ == "__main__":
    main()
