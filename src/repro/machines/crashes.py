"""Seeded crash injection for the discovery driver.

The fault layer (:mod:`repro.machines.faults`) simulates the *target*
dying; this module simulates the *discovery process itself* dying --
the other half of the deployment reality a long-running probe campaign
faces.  A :class:`CrashPlan` names one point in the driver's phase
table (before a phase, after a phase's checkpoint committed, or after
the N-th per-sample completion record inside a fan-out phase) and, when
the driver reaches it, either raises :class:`SimulatedCrash` or -- in
``kill`` mode -- SIGKILLs the process outright, so nothing between the
last durable commit and the crash survives, exactly like a power cut.

The crash-durability tests sweep :meth:`CrashPlan.sweep` across the
whole phase table and assert that every killed-and-resumed run produces
a spec bit-for-bit identical to an uninterrupted one;
:meth:`CrashPlan.random` draws a seeded crash point for soak-style
harnesses.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass

#: crash-point kinds, in the order the driver visits them
KINDS = ("before", "after", "sample")


class SimulatedCrash(BaseException):
    """Process death, simulated in-process.

    Deliberately **not** an :class:`Exception`: the pipeline's
    quarantine/retry machinery must never absorb a crash the way it
    absorbs a flaky probe -- a crash unwinds everything, like SIGKILL
    minus the coroner."""

    def __init__(self, kind, phase, index=None):
        where = f"{kind} {phase!r}"
        if index is not None:
            where += f" (sample record {index})"
        super().__init__(f"simulated process crash {where}")
        self.kind = kind
        self.phase = phase
        self.index = index


@dataclass
class CrashPlan:
    """One scheduled process death.

    ``kind``
        ``"before"`` -- fire just before the named phase starts;
        ``"after"`` -- fire right after the phase's checkpoint committed;
        ``"sample"`` -- fire once the named fan-out phase has committed
        at least ``index`` per-sample completion records (mid-phase).
    ``kill``
        SIGKILL the current process instead of raising
        :class:`SimulatedCrash`: a *real* unclean death for subprocess
        end-to-end tests (no ``finally`` blocks, no interpreter exit).
    """

    kind: str
    phase: str
    index: int = 1
    kill: bool = False
    fired: bool = False

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"crash kind must be one of {KINDS}, got {self.kind!r}")

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, spec, kill=False):
        """Parse ``"before:<phase>"``, ``"after:<phase>"`` or
        ``"sample:<phase>:<n>"``.  Underscores in the phase name stand
        for spaces, so specs survive shells unquoted."""
        parts = spec.split(":")
        if len(parts) == 2:
            kind, phase = parts
            index = 1
        elif len(parts) == 3:
            kind, phase, raw = parts
            try:
                index = int(raw)
            except ValueError as exc:
                raise ValueError(f"bad sample index in crash spec {spec!r}") from exc
        else:
            raise ValueError(
                f"bad crash spec {spec!r}; want kind:phase or sample:phase:n"
            )
        return cls(kind=kind, phase=phase.replace("_", " "), index=index, kill=kill)

    @classmethod
    def sweep(cls, phases, kill=False):
        """One plan per phase boundary, in driver order -- the full
        crash-at-every-phase table the durability tests iterate."""
        plans = []
        for phase in phases:
            plans.append(cls(kind="before", phase=phase, kill=kill))
            plans.append(cls(kind="after", phase=phase, kill=kill))
        return plans

    @classmethod
    def random(cls, seed, phases, max_sample_index=8, kill=False):
        """A seeded random crash point over the phase table (soak
        harnesses want coverage without enumerating the sweep)."""
        rng = random.Random(seed)
        kind = rng.choice(KINDS)
        phase = rng.choice(list(phases))
        index = rng.randint(1, max_sample_index) if kind == "sample" else 1
        return cls(kind=kind, phase=phase, index=index, kill=kill)

    # -- firing ---------------------------------------------------------

    def matches(self, kind, phase, index=None):
        if self.fired or kind != self.kind or phase != self.phase:
            return False
        if kind == "sample":
            return index is not None and index >= self.index
        return True

    def fire(self, kind, phase, index=None):
        """Crash now.  In ``kill`` mode the call never returns."""
        self.fired = True
        if self.kill:
            os.kill(os.getpid(), signal.SIGKILL)
        raise SimulatedCrash(kind, phase, index)

    def check(self, kind, phase, index=None):
        """The driver's hook: crash iff this is the scheduled point."""
        if self.matches(kind, phase, index):
            self.fire(kind, phase, index)

    def describe(self):
        mode = "SIGKILL" if self.kill else "raise"
        if self.kind == "sample":
            return f"crash[{mode}] in {self.phase!r} at sample record {self.index}"
        return f"crash[{mode}] {self.kind} {self.phase!r}"

    def spec(self):
        """The ``--crash-at`` spec string that parses back to this plan
        (inverse of :meth:`parse`; spaces become underscores)."""
        phase = self.phase.replace(" ", "_")
        if self.kind == "sample":
            return f"{self.kind}:{phase}:{self.index}"
        return f"{self.kind}:{phase}"


class FleetKillPlan:
    """A seeded schedule of whole-worker SIGKILLs across a campaign
    fleet -- the supervisor-level chaos harness.

    Where :class:`CrashPlan` kills one process at one point, a fleet
    kill plan assigns each campaign a *sequence* of crash points: the
    campaign's first worker dies at the first point, the adopted worker
    at the second, and so on until the schedule is spent and the final
    worker runs to completion.  The supervisor injects each point as
    ``--crash-at SPEC --crash-kill``, so the worker SIGKILLs itself at
    a phase or mid-phase boundary -- a real unclean death, observed by
    the supervisor as a vanished lease and exit code ``-SIGKILL``.

    Seeding is per-target (``f"{seed}:{target}"``), so a schedule is
    reproducible for any subset of targets in any order, and two
    supervisors given the same seed agree on every kill.
    """

    def __init__(self, schedule):
        self.schedule = dict(schedule)

    @classmethod
    def seeded(
        cls,
        seed,
        targets,
        phases,
        sample_phases=None,
        kills_per_campaign=2,
        max_sample_index=6,
    ):
        """Draw ``kills_per_campaign`` crash points for every target.
        ``sample`` (mid-phase) points are aimed at *sample_phases* --
        the driver's fan-out phases, where per-sample records give the
        boundary meaning -- so every drawn kill can actually fire."""
        sample_phases = list(sample_phases or phases)
        schedule = {}
        for target in targets:
            rng = random.Random(f"{seed}:{target}")
            plans = []
            for _ in range(kills_per_campaign):
                kind = rng.choice(KINDS)
                if kind == "sample":
                    phase = rng.choice(sample_phases)
                    index = rng.randint(1, max_sample_index)
                else:
                    phase = rng.choice(list(phases))
                    index = 1
                plans.append(
                    CrashPlan(kind=kind, phase=phase, index=index, kill=True)
                )
            schedule[target] = plans
        return cls(schedule)

    @classmethod
    def explicit(cls, schedule):
        """Build from ``{target: [spec, ...]}`` crash-spec strings (the
        sweep tests pin exact phase/mid-phase boundaries this way)."""
        return cls(
            {
                target: [CrashPlan.parse(spec, kill=True) for spec in specs]
                for target, specs in schedule.items()
            }
        )

    def spec_for(self, target, attempt):
        """The ``--crash-at`` spec for a campaign's *attempt* (1-based),
        or None once the target's schedule is spent (the attempt that
        runs clean to completion)."""
        plans = self.schedule.get(target, ())
        if 1 <= attempt <= len(plans):
            return plans[attempt - 1].spec()
        return None

    def total_kills(self):
        return sum(len(plans) for plans in self.schedule.values())

    def describe(self):
        lines = []
        for target, plans in self.schedule.items():
            points = ", ".join(p.describe() for p in plans) or "(none)"
            lines.append(f"{target}: {points}")
        return "\n".join(lines)
