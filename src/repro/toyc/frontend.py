"""Front end for language A: a small imperative language.

::

    var x, y;
    x := 313;
    y := x * 109 + 1;
    if x < y then print y; else print x; end
    while x > 0 do x := x - 1; end
    print x;

Statements: ``var`` declarations, assignment (``:=``), ``print``,
``if .. then .. [else ..] end``, ``while .. do .. end``.  Expressions:
integer literals, variables, ``+ - * / % & | ^ << >>``, unary ``-``/``~``,
parentheses.  Conditions: ``< <= > >= == !=``.
"""

from __future__ import annotations

import re

from repro.beg import ir
from repro.errors import CompilerError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<num>\d+)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>:=|<<|>>|<=|>=|==|!=|[-+*/%&|^~<>();,])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"var", "print", "if", "then", "else", "end", "while", "do"}

_PRECEDENCE = [["|"], ["^"], ["&"], ["<<", ">>"], ["+", "-"], ["*", "/", "%"]]

_RELATIONS = {
    "<": "BranchLT",
    "<=": "BranchLE",
    ">": "BranchGT",
    ">=": "BranchGE",
    "==": "BranchEQ",
    "!=": "BranchNE",
}

_NEGATED = {
    "BranchLT": "BranchGE",
    "BranchLE": "BranchGT",
    "BranchGT": "BranchLE",
    "BranchGE": "BranchLT",
    "BranchEQ": "BranchNE",
    "BranchNE": "BranchEQ",
}


def tokenize(source):
    tokens = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if not match:
            raise CompilerError(f"stray character {source[pos]!r}", line)
        line += match.group().count("\n")
        pos = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        value = match.group()
        if kind == "num":
            tokens.append(("num", int(value), line))
        elif kind == "id":
            tokens.append(("kw" if value in _KEYWORDS else "id", value, line))
        else:
            tokens.append(("op", value, line))
    tokens.append(("eof", None, line))
    return tokens


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0
        self.vars = {}
        self.stmts = []
        self._labels = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def tok(self):
        return self.tokens[self.pos]

    def advance(self):
        tok = self.tok
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def accept(self, kind, value=None):
        tok = self.tok
        if tok[0] == kind and (value is None or tok[1] == value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        tok = self.accept(kind, value)
        if tok is None:
            want = value if value is not None else kind
            raise CompilerError(f"expected {want!r}, found {self.tok[1]!r}", self.tok[2])
        return tok

    def fresh_label(self, stem):
        self._labels += 1
        return f"{stem}{self._labels}"

    # -- program ------------------------------------------------------------

    def parse(self):
        while self.tok[0] != "eof":
            self.statement(self.stmts)
        program = ir.IRProgram(stmts=self.stmts + [ir.Exit()])
        program.locals_used = len(self.vars)
        return program

    def local(self, name, line):
        if name not in self.vars:
            raise CompilerError(f"undeclared variable {name!r}", line)
        return ir.Local(self.vars[name])

    # -- statements ------------------------------------------------------------

    def statement(self, out):
        tok = self.tok
        if tok[0] == "kw" and tok[1] == "var":
            self.advance()
            while True:
                name = self.expect("id")[1]
                if name in self.vars:
                    raise CompilerError(f"duplicate variable {name!r}", tok[2])
                self.vars[name] = len(self.vars)
                if not self.accept("op", ","):
                    break
            self.expect("op", ";")
            return
        if tok[0] == "kw" and tok[1] == "print":
            self.advance()
            value = self.expression()
            self.expect("op", ";")
            out.append(ir.Print(value))
            return
        if tok[0] == "kw" and tok[1] == "if":
            self.advance()
            op, left, right = self.condition()
            self.expect("kw", "then")
            skip = self.fresh_label("else")
            endif = self.fresh_label("endif")
            out.append(ir.Branch(_NEGATED[op], left, right, skip))
            while not (self.tok[0] == "kw" and self.tok[1] in ("else", "end")):
                self.statement(out)
            if self.accept("kw", "else"):
                out.append(ir.Jump(endif))
                out.append(ir.Label(skip))
                while not (self.tok[0] == "kw" and self.tok[1] == "end"):
                    self.statement(out)
                out.append(ir.Label(endif))
            else:
                out.append(ir.Label(skip))
            self.expect("kw", "end")
            return
        if tok[0] == "kw" and tok[1] == "while":
            self.advance()
            top = self.fresh_label("loop")
            done = self.fresh_label("done")
            out.append(ir.Label(top))
            op, left, right = self.condition()
            self.expect("kw", "do")
            out.append(ir.Branch(_NEGATED[op], left, right, done))
            while not (self.tok[0] == "kw" and self.tok[1] == "end"):
                self.statement(out)
            self.expect("kw", "end")
            out.append(ir.Jump(top))
            out.append(ir.Label(done))
            return
        if tok[0] == "id":
            name = self.advance()[1]
            self.expect("op", ":=")
            value = self.expression()
            self.expect("op", ";")
            out.append(ir.Assign(self.local(name, tok[2]), value))
            return
        raise CompilerError(f"unexpected token {tok[1]!r}", tok[2])

    def condition(self):
        left = self.expression()
        tok = self.expect("op")
        if tok[1] not in _RELATIONS:
            raise CompilerError(f"expected a comparison, found {tok[1]!r}", tok[2])
        right = self.expression()
        return _RELATIONS[tok[1]], left, right

    # -- expressions -------------------------------------------------------------

    _IR_BINOP = {
        "+": "Plus",
        "-": "Minus",
        "*": "Mult",
        "/": "Div",
        "%": "Mod",
        "&": "And",
        "|": "Or",
        "^": "Xor",
        "<<": "Shl",
        ">>": "Shr",
    }

    def expression(self, level=0):
        if level >= len(_PRECEDENCE):
            return self.unary()
        left = self.expression(level + 1)
        while self.tok[0] == "op" and self.tok[1] in _PRECEDENCE[level]:
            op = self.advance()[1]
            right = self.expression(level + 1)
            left = ir.BinOp(self._IR_BINOP[op], left, right)
        return left

    def unary(self):
        tok = self.tok
        if tok[0] == "op" and tok[1] in ("-", "~"):
            self.advance()
            operand = self.unary()
            if tok[1] == "-" and isinstance(operand, ir.Const):
                return ir.Const(-operand.value)
            return ir.UnOp("Neg" if tok[1] == "-" else "Not", operand)
        if tok[0] == "num":
            self.advance()
            return ir.Const(tok[1])
        if tok[0] == "id":
            self.advance()
            return self.local(tok[1], tok[2])
        if self.accept("op", "("):
            inner = self.expression()
            self.expect("op", ")")
            return inner
        raise CompilerError(f"unexpected token {tok[1]!r}", tok[2])


def parse(source):
    """Parse a language-A program into an IRProgram."""
    return Parser(source).parse()
