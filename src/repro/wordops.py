"""Word-sized integer arithmetic with C semantics.

Both the simulated machines and the reverse interpreter must perform
arithmetic "in the correct precision" (paper section 5.2.1, which cites
the use of ``enquire`` for exactly this purpose).  All register and memory
values are stored as unsigned Python ints masked to the word width; these
helpers convert between signed/unsigned views and implement C's
truncating division.
"""


def mask(value, bits):
    """Truncate *value* to an unsigned *bits*-wide integer."""
    return value & ((1 << bits) - 1)


def to_signed(value, bits):
    """Interpret an unsigned *bits*-wide integer as two's complement."""
    value = mask(value, bits)
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


def to_unsigned(value, bits):
    """Alias of :func:`mask`, for symmetric naming at call sites."""
    return mask(value, bits)


def c_div(a, b):
    """C integer division: truncation toward zero (Python's ``//`` floors)."""
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q


def c_mod(a, b):
    """C integer remainder: ``a - c_div(a, b) * b`` (sign follows *a*)."""
    return a - c_div(a, b) * b


def shift_amount(count, bits):
    """Shift counts are taken modulo the word width, as most ISAs do."""
    return count % bits


def add(a, b, bits):
    return mask(a + b, bits)


def sub(a, b, bits):
    return mask(a - b, bits)


def mul(a, b, bits):
    return mask(to_signed(a, bits) * to_signed(b, bits), bits)


def sdiv(a, b, bits):
    return mask(c_div(to_signed(a, bits), to_signed(b, bits)), bits)


def smod(a, b, bits):
    return mask(c_mod(to_signed(a, bits), to_signed(b, bits)), bits)


def neg(a, bits):
    return mask(-to_signed(a, bits), bits)


def bit_not(a, bits):
    return mask(~a, bits)


def shl(a, b, bits):
    return mask(a << shift_amount(b, bits), bits)


def shr_arith(a, b, bits):
    return mask(to_signed(a, bits) >> shift_amount(b, bits), bits)


def shr_logical(a, b, bits):
    return mask(a, bits) >> shift_amount(b, bits)
