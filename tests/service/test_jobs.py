"""JobStore unit coverage: validation, durable persistence, dense id
allocation across store instances, and torn-record tolerance."""

import json

import pytest

from repro.service import jobs as jobstates
from repro.service.jobs import JobError, JobStore, _validate_workers


def test_submit_persists_a_queued_record(tmp_path):
    store = JobStore(tmp_path)
    job = store.submit(["vax", "mips"], seed=7, workers=4)
    assert job["id"] == "job-000001"
    assert job["state"] == jobstates.QUEUED
    assert job["targets"] == ["vax", "mips"]
    assert job["seed"] == 7
    assert job["workers"] == 4
    on_disk = json.loads((tmp_path / "jobs" / "job-000001.json").read_text())
    assert on_disk == job


def test_defaults_applied(tmp_path):
    job = JobStore(tmp_path).submit(["vax"])
    assert job["seed"] == 1997
    assert job["workers"] is None
    assert job["max_attempts"] == 5
    assert job["escalate_votes"] is None


def test_ids_are_dense_and_survive_restart(tmp_path):
    store = JobStore(tmp_path)
    assert store.submit(["vax"])["id"] == "job-000001"
    assert store.submit(["vax"])["id"] == "job-000002"
    # a fresh store instance (a restarted service) continues the series
    assert JobStore(tmp_path).submit(["vax"])["id"] == "job-000003"


def test_update_round_trips(tmp_path):
    store = JobStore(tmp_path)
    job = store.submit(["vax"])
    store.update(job["id"], state=jobstates.DONE, detail={"ok": True})
    reread = store.get(job["id"])
    assert reread["state"] == jobstates.DONE
    assert reread["detail"] == {"ok": True}


def test_open_jobs_filters_terminal_states(tmp_path):
    store = JobStore(tmp_path)
    queued = store.submit(["vax"])
    done = store.submit(["mips"])
    store.update(done["id"], state=jobstates.DONE)
    assert [j["id"] for j in store.open_jobs()] == [queued["id"]]


def test_torn_record_is_invisible_not_fatal(tmp_path):
    store = JobStore(tmp_path)
    store.submit(["vax"])
    (tmp_path / "jobs" / "job-000002.json").write_text('{"half a rec')
    assert [j["id"] for j in store.list()] == ["job-000001"]
    with pytest.raises(JobError, match="unreadable"):
        store.get("job-000002")


def test_unknown_job_raises(tmp_path):
    with pytest.raises(JobError, match="no such job"):
        JobStore(tmp_path).get("job-424242")


@pytest.mark.parametrize(
    "targets,message",
    [
        ([], "non-empty"),
        (None, "non-empty"),
        ("vax", "non-empty"),  # a bare string is not a list of targets
        (["vax", "vax"], "duplicate"),
    ],
)
def test_bad_target_lists_are_refused(tmp_path, targets, message):
    with pytest.raises(JobError, match=message):
        JobStore(tmp_path).submit(targets)


def test_unknown_targets_refused_against_known_set(tmp_path):
    with pytest.raises(JobError, match="unknown target"):
        JobStore(tmp_path).submit(["z80"], known_targets=["vax", "mips"])


def test_bogus_knob_refused(tmp_path):
    with pytest.raises(JobError, match="unknown option"):
        JobStore(tmp_path).submit(["vax"], fleet=9)


@pytest.mark.parametrize(
    "value,expected",
    [(None, None), ("auto", "auto"), (3, 3), ("4", 4), (0, 1)],
)
def test_workers_validation_accepts(value, expected):
    assert _validate_workers(value) == expected


@pytest.mark.parametrize("value", ["many", [2]])
def test_workers_validation_refuses(value):
    with pytest.raises(JobError, match="workers"):
        _validate_workers(value)
