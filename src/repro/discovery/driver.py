"""The full Automatic Architecture Discovery pipeline.

``ArchitectureDiscovery(machine).run()`` performs, in order: the enquire
probes, assembler-syntax discovery, sample generation, register-universe
probing, region extraction, mutation-analysis preprocessing, graph
matching, reverse interpretation, branch/call/frame analyses, and
synthesis -- returning a :class:`DiscoveryReport` whose ``spec`` is a
machine description ready for the back-end generator.

This is the paper's Figure 1 retargeting entry point: the only inputs
are the target machine handle (its "internet address") and, implicitly,
the command lines its toolchain answers to.

Because that target is reached over a network, the driver assumes it is
*unreliable*: every remote verb is retried under a
:class:`~repro.discovery.resilience.RetryPolicy`, samples whose probes
fail terminally are **quarantined** (skipped and recorded, instead of
aborting the run), and the pipeline itself is a checkpointable phase
table -- a phase-level failure raises :class:`DiscoveryInterrupted`
carrying a :class:`DiscoveryCheckpoint` that ``run(resume=...)`` picks
up without redoing completed phases.

Because the *discovery process itself* can also die (kill -9, OOM, a
rebooted build host), the checkpoint is durable: pass ``run_dir=`` (CLI
``--run-dir``) and every completed phase -- plus, inside the fan-out
phases, every ``checkpoint_every`` completed samples -- commits an
atomic, schema-versioned checkpoint generation to disk (see
:mod:`~repro.discovery.durable`).  ``repro discover --resume RUNDIR``
reloads the newest valid generation and produces a spec bit-for-bit
identical to an uninterrupted run; a :class:`~repro.machines.crashes.
CrashPlan` (``crash_plan=``) kills the driver at any phase or sample
boundary to prove it.

Because the target is *slow to reach* (round-trips dominate discovery
cost), the per-sample work -- sample realisation, register probing,
region extraction, mutation analysis, graph matching -- fans out over a
bounded pool of concurrent connections
(:class:`~repro.discovery.scheduler.ProbeScheduler`; ``workers=``, or
the ``REPRO_WORKERS`` environment variable), and every remote verb can
be memoised in a persistent content-addressed
:class:`~repro.discovery.cache.ProbeCache` (``cache=``) so repeat runs
skip remote compiles and executions entirely.  Results merge in sample
order with per-task seeded randomness, so the discovered description is
bit-for-bit identical for any worker count.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.discovery import probe
from repro.discovery.addresses import discover_address_map
from repro.discovery.branches import BranchAnalysis
from repro.discovery.cache import ProbeCache, make_caching
from repro.discovery.calling import CallAnalysis
from repro.discovery.durable import (
    DurableRun,
    PhaseProgress,
    auto_run_directory,
    chunked,
    run_config,
)
from repro.discovery.enquire import enquire
from repro.discovery.extract_pool import ExtractionEngine
from repro.discovery.frames import discover_frame, discover_idioms
from repro.discovery.generator import SampleGenerator, realise_sample
from repro.discovery.lexer import extract_region
from repro.discovery.mutation import MutationEngine
from repro.discovery.preprocess import Preprocessor
from repro.discovery.resilience import ResilienceConfig, make_resilient
from repro.discovery.scheduler import ProbeScheduler, TargetConnectionPool
from repro.discovery.sizing import choose_workers, sample_verb_latency, sizing_record
from repro.discovery.syntax import DiscoveredSyntax
from repro.discovery.synthesize import Synthesizer
from repro.errors import DiscoveryError, TargetError

#: per-sample phases translate these into quarantine instead of aborting
_QUARANTINE_ERRORS = (DiscoveryError, TargetError)


@dataclass
class PhaseTiming:
    name: str
    seconds: float  # wall clock
    cpu_seconds: float = 0.0  # parent-process CPU (time.process_time)


@dataclass
class DiscoveryReport:
    target: str
    spec: object = None
    syntax: object = None
    enquire: object = None
    corpus: object = None
    addr_map: object = None
    extraction: object = None
    branch_model: object = None
    call_protocol: object = None
    frame_model: object = None
    engine: object = None
    timings: list = field(default_factory=list)
    machine_stats: object = None
    probe_log: object = None
    notes: list = field(default_factory=list)
    quarantined: list = field(default_factory=list)  # degraded-coverage record
    retry_stats: object = None  # resilience.RetryStats, when wrapped
    fault_stats: object = None  # faults.FaultStats, when injecting
    scheduler_stats: object = None  # scheduler.SchedulerStats
    cache_stats: object = None  # cache.CacheStats, when caching
    diagnostics: object = None  # analysis.DiagnosticSet from the lint phase
    extraction_stats: object = None  # extract_pool.ExtractionStats
    verify_stats: object = None  # analysis.verify obligation counts (dict)

    @property
    def phase_timings(self):
        """Per-phase wall and parent-CPU seconds, in phase order."""
        return {
            t.name: {
                "wall_s": round(t.seconds, 4),
                "cpu_s": round(t.cpu_seconds, 4),
            }
            for t in self.timings
        }

    def summary(self):
        """The headline numbers.  Every field is guarded: a report from
        an interrupted or degenerate run (no samples, no enquire data)
        summarises instead of dividing by zero or dereferencing None."""
        usable = sum(1 for s in self.corpus.samples if s.usable) if self.corpus else 0
        total = len(self.corpus.samples) if self.corpus else 0
        out = {
            "target": self.target,
            "word": (
                f"{self.enquire.word_bits}-bit {self.enquire.endian}-endian"
                if self.enquire
                else "?"
            ),
            "comment_char": self.syntax.comment_char if self.syntax else "?",
            "registers_discovered": len(self.syntax.registers) if self.syntax else 0,
            "samples": f"{usable}/{total} analysed",
            "usable_fraction": round(usable / total, 4) if total else 0.0,
            "instructions_discovered": len(self.extraction.semantics)
            if self.extraction
            else 0,
            "interpretations_tried": self.extraction.interpretations_tried
            if self.extraction
            else 0,
            "branch_rules": sorted(self.branch_model.rules) if self.branch_model else [],
            "call_protocol": self.call_protocol.describe() if self.call_protocol else "?",
            "target_executions": self.machine_stats.executions if self.machine_stats else 0,
            "total_seconds": round(sum(t.seconds for t in self.timings), 2),
            "quarantined_samples": len(self.quarantined),
        }
        if self.retry_stats is not None:
            out["retried_calls"] = self.retry_stats.retries
            out["transient_errors"] = self.retry_stats.transient_errors
            out["vote_runs"] = self.retry_stats.vote_runs
        if self.fault_stats is not None:
            out["faults_injected"] = self.fault_stats.injected
        if self.scheduler_stats is not None:
            out["workers"] = self.scheduler_stats.workers
            out["parallel_tasks"] = self.scheduler_stats.tasks
            out["max_in_flight"] = self.scheduler_stats.max_in_flight
        if self.cache_stats is not None:
            out["cache_hits"] = self.cache_stats.hits
            out["cache_misses"] = self.cache_stats.misses
            out["cache_hit_rate"] = round(self.cache_stats.hit_rate, 4)
            out["cache_evictions"] = self.cache_stats.evictions
            out["cache_corrupt_entries"] = self.cache_stats.corrupt_entries
        if self.extraction_stats is not None:
            out["extract_procs"] = self.extraction_stats.procs
            out["extract_shards"] = self.extraction_stats.shards
            out["extract_dispatched_shards"] = self.extraction_stats.dispatched_shards
            out["hypothesis_memo_hits"] = self.extraction_stats.memo_hits
            out["hypothesis_memo_hit_rate"] = round(
                self.extraction_stats.memo_hit_rate, 4
            )
            out["ri_budget_spent"] = self.extraction_stats.budget_spent
            out["ri_budget_unspent"] = self.extraction_stats.budget_unspent
        if self.quarantined:
            out["coverage"] = (
                f"degraded: {usable}/{total} samples analysed, "
                f"{len(self.quarantined)} quarantined"
            )
        if self.diagnostics is not None:
            counts = self.diagnostics.counts()
            out["lint_errors"] = counts.get("error", 0)
            out["lint_warnings"] = counts.get("warning", 0)
        if self.verify_stats is not None:
            out["verify_proven"] = self.verify_stats.get("proven", 0)
            out["verify_sampled"] = self.verify_stats.get("sampled", 0)
            out["verify_refuted"] = self.verify_stats.get("refuted", 0)
        return out

    def render_summary(self):
        lines = [f"=== architecture discovery report: {self.target} ==="]
        for key, value in self.summary().items():
            lines.append(f"  {key:26s}: {value}")
        lines.append("  phase timings:")
        for timing in self.timings:
            lines.append(
                f"    {timing.name:24s}: {timing.seconds:.2f}s wall, "
                f"{timing.cpu_seconds:.2f}s cpu"
            )
        if self.quarantined:
            lines.append("  quarantined samples:")
            for entry in self.quarantined:
                lines.append(f"    {entry['sample']:24s}: {entry['reason']}")
        if self.diagnostics is not None and self.diagnostics.diagnostics:
            lines.append("  lint diagnostics:")
            for diag in self.diagnostics.diagnostics:
                lines.append(f"    {diag.severity:7s} {diag.code} {diag.where}")
        return "\n".join(lines)


@dataclass
class DiscoveryCheckpoint:
    """Everything needed to resume an interrupted run: the partially
    filled report plus the names of phases already completed."""

    target: str
    completed: list
    report: DiscoveryReport
    state: dict

    def describe(self):
        done = ", ".join(self.completed) or "(none)"
        return f"checkpoint[{self.target}]: completed {done}"


class DiscoveryInterrupted(DiscoveryError):
    """A phase failed terminally; ``checkpoint`` resumes past the
    completed prefix once the target recovers.

    The checkpoint is also persisted to ``checkpoint_path`` before the
    exception is raised (the run's own ``--run-dir``, or a freshly
    created fallback directory), so the caller cannot lose it by letting
    the exception -- or the process -- die."""

    def __init__(self, phase, cause, checkpoint, checkpoint_path=None):
        message = f"discovery interrupted during {phase!r}: {cause}"
        if checkpoint_path is not None:
            message += (
                f" [checkpoint saved to {checkpoint_path}; resume with:"
                f" repro discover --resume {checkpoint_path}]"
            )
        super().__init__(message)
        self.phase = phase
        self.cause = cause
        self.checkpoint = checkpoint
        self.checkpoint_path = checkpoint_path


class ArchitectureDiscovery:
    """End-to-end discovery against one RemoteMachine.

    The machine handle is wrapped in a
    :class:`~repro.discovery.resilience.ResilientMachine` (retry +
    circuit breaker + optional execution voting); pass a
    :class:`ResilienceConfig` to tune the knobs.  With the default
    config (``votes=1``) and a healthy target the wrapper adds zero
    extra target interactions.
    """

    #: phases with per-sample completion records (mid-phase checkpoint
    #: boundaries; the chaos harness aims its ``sample`` kills here)
    FAN_OUT_PHASES = (
        "sample generation",
        "register discovery",
        "mutation analysis",
        "reverse interpretation",
    )

    #: the phase table: (name, method) in execution order
    PHASES = (
        ("enquire", "_phase_enquire"),
        ("assembler syntax", "_phase_syntax"),
        ("sample generation", "_phase_generate"),
        ("register discovery", "_phase_registers"),
        ("region extraction", "_phase_extract"),
        ("mutation analysis", "_phase_mutation"),
        ("address mapping", "_phase_addresses"),
        ("graph matching", "_phase_graphmatch"),
        ("reverse interpretation", "_phase_reverse_interp"),
        ("branch analysis", "_phase_branches"),
        ("calling convention", "_phase_calling"),
        ("frames and idioms", "_phase_frames"),
        ("synthesis", "_phase_synthesize"),
        ("spec lint", "_phase_speclint"),
    )

    def __init__(
        self,
        machine,
        seed=1997,
        ri_budget=60_000,
        use_likelihood=True,
        resilience=None,
        workers=None,
        cache=None,
        extract_procs=None,
        extract_memo=None,
        run_dir=None,
        crash_plan=None,
        checkpoint_every=None,
        verify=False,
    ):
        # The phase table is per-instance so opt-in phases (spec verify)
        # append without changing the class-level contract other code
        # (crash plans, resume bookkeeping) is written against.
        self.phases = list(self.PHASES)
        if verify:
            self.phases.append(("spec verify", "_phase_verify"))
        if resilience is False:  # escape hatch: measure the raw machine
            self.resilience = None
            self.machine = machine
        else:
            self.resilience = resilience or ResilienceConfig()
            self.machine = make_resilient(machine, self.resilience)
        if isinstance(cache, (str, os.PathLike)):
            cache = ProbeCache(cache)
        self.cache = cache
        self.machine = make_caching(self.machine, cache)
        if workers is None:
            workers = os.environ.get("REPRO_WORKERS", "1")
        # "auto" defers the venue choice to measured verb latency: the
        # scheduler starts single-connection and is resized right after
        # the enquire phase (see _apply_adaptive_sizing).  Workers are a
        # venue knob, so adaptation can never change the spec.
        self.adaptive_workers = workers == "auto"
        self._sized = False
        workers = 1 if self.adaptive_workers else int(workers)
        self.workers = max(1, workers)
        # The primary connection serves the sequential phases; workers
        # get one cloned connection each (per-connection counters, fault
        # plans and retry state -- aggregated again in _finalise).
        pool_size = self.workers + 1 if self.workers > 1 else 1
        self.pool, self._pool_note = TargetConnectionPool.open(self.machine, pool_size)
        self.scheduler = ProbeScheduler(self.pool, self.workers)
        if extract_procs is None:
            extract_procs = int(os.environ.get("REPRO_EXTRACT_PROCS", "1"))
        if extract_memo is None:
            extract_memo = os.environ.get("REPRO_EXTRACT_MEMO", "1") != "0"
        self.extractor = ExtractionEngine(procs=extract_procs, memo=extract_memo)
        self.seed = seed
        self.ri_budget = ri_budget
        self.use_likelihood = use_likelihood
        # -- crash durability ------------------------------------------
        # checkpoint_every: per-sample completion records per durable
        # commit inside the fan-out phases (1 = exact sample boundary).
        if checkpoint_every is None:
            checkpoint_every = int(os.environ.get("REPRO_CHECKPOINT_EVERY", "8"))
        self.checkpoint_every = max(1, checkpoint_every)
        self.crash_plan = crash_plan
        if run_dir is None or isinstance(run_dir, DurableRun):
            self.durable = run_dir
        else:
            self.durable = DurableRun.attach(run_dir, run_config(self))
        # the live (report, completed, state) triple of the current run;
        # _checkpoint() snapshots it for commits and interrupts
        self._report = None
        self._completed = None
        self._state = None
        #: where the Ctrl-C auto-persist landed (set on KeyboardInterrupt)
        self.interrupt_run_dir = None

    def run(self, resume=None):
        """Run all phases; pass ``resume=interrupted.checkpoint`` (or a
        checkpoint loaded from a :class:`~repro.discovery.durable.
        DurableRun`) to continue a run cut short by
        :class:`DiscoveryInterrupted` or by process death."""
        if resume is not None:
            if resume.target != self.machine.target:
                raise DiscoveryError(
                    f"checkpoint is for {resume.target!r}, "
                    f"machine is {self.machine.target!r}"
                )
            report, completed, state = resume.report, list(resume.completed), resume.state
            # A thawed checkpoint carries no live connection: rebind the
            # corpus (and through it the mutation engine's forks) to this
            # driver's freshly opened stack.  Assembled init objects
            # belonged to the dead connection, so the cache starts empty.
            if report.corpus is not None and report.corpus.machine is None:
                report.corpus.machine = self.machine
                report.corpus._init_cache = {}
        else:
            report = DiscoveryReport(target=self.machine.target)
            completed, state = [], {}
        if self._pool_note and self._pool_note not in report.notes:
            report.notes.append(self._pool_note)
        self._report, self._completed, self._state = report, completed, state
        clock = _Clock(report)
        if "enquire" in completed:
            # Resumed past the sizing point: re-derive (never re-measure)
            # the worker count from the recorded samples.
            self._apply_adaptive_sizing(state)

        try:
            for name, method in self.phases:
                if name in completed:
                    continue
                self._crash_point("before", name)
                try:
                    with clock(name):
                        getattr(self, method)(report, state)
                except _QUARANTINE_ERRORS as exc:
                    if isinstance(exc, DiscoveryInterrupted):
                        raise
                    # The scheduler has drained: captured per-sample
                    # results are already merged, so the checkpoint's
                    # report holds no in-flight work, and the cache has
                    # every answer that came back (write-through).
                    state["scheduler"] = self.scheduler.stats.snapshot()
                    if self.cache is not None:
                        state["cache"] = self.cache.describe()
                    checkpoint = self._checkpoint()
                    path = self._persist_interrupt(checkpoint)
                    raise DiscoveryInterrupted(
                        name, exc, checkpoint, checkpoint_path=path
                    ) from exc
                completed.append(name)
                if name == "enquire":
                    # Size the scheduler while the link is freshly
                    # characterised, before the first fan-out phase.
                    self._apply_adaptive_sizing(state)
                self._commit()
                self._crash_point("after", name)
        except KeyboardInterrupt:
            # Ctrl-C gets a durability story too: the run is one
            # --resume away instead of lost.  With a run directory the
            # newest on-disk generation (committed at the last record
            # boundary) is already consistent -- committing the live
            # in-memory state here could snapshot a chunk that was
            # absorbed but not yet recorded, which a resume would then
            # redo.  Without one, best-effort persist into a fallback
            # directory beats losing everything.
            if self.durable is not None:
                self.interrupt_run_dir = str(self.durable.directory)
            else:
                self.interrupt_run_dir = self._persist_interrupt(self._checkpoint())
            raise
        finally:
            self.scheduler.close()
            self.extractor.close()
            if self.cache is not None:
                self.cache.close()

        self._finalise(report)
        return report

    def _finalise(self, report):
        if report.spec is not None:
            report.spec.phase_timings = report.phase_timings
        report.machine_stats = self.pool.aggregate_machine_stats()
        report.retry_stats = self.pool.aggregate_retry_stats()
        report.fault_stats = self.pool.aggregate_fault_stats()
        report.scheduler_stats = self.scheduler.stats.snapshot()
        if self.cache is not None:
            report.cache_stats = self.cache.stats.snapshot()
        if report.corpus is not None:
            report.quarantined = [
                {"sample": s.name, "reason": s.discarded}
                for s in report.corpus.samples
                if s.discarded and s.discarded.startswith("quarantined")
            ]

    # -- adaptive sizing ----------------------------------------------

    def _apply_adaptive_sizing(self, state):
        """Pick the scheduler's concurrency from measured verb latency
        (``workers="auto"``).

        The decision is made exactly once per run: a fresh run measures
        a few fixed probe round-trips, a resumed or adopted run
        re-derives the same worker count from the samples recorded in
        the run manifest (or the checkpoint state) -- never by
        re-measuring, so the venue stays stable across resumes even if
        the link changed underneath.
        """
        if not self.adaptive_workers or self._sized:
            return
        self._sized = True
        record = None
        if self.durable is not None:
            record = self.durable.config.get("adaptive_sizing")
        if record is None:
            record = state.get("adaptive_sizing")
        if record is not None:
            samples = record.get("samples_ms", {})
        else:
            samples = sample_verb_latency(self.machine)
        workers = choose_workers(samples)
        record = sizing_record(samples, workers)
        state["adaptive_sizing"] = record
        if self.durable is not None:
            self.durable.config["adaptive_sizing"] = record
            self.durable.config["workers"] = workers
            self.durable._write_manifest()
        note = (
            f"adaptive sizing: median round trip "
            f"{record['median_round_trip_ms']:.3f}ms -> {workers} worker(s)"
        )
        if note not in self._report.notes:
            self._report.notes.append(note)
        self._resize_scheduler(workers)

    def _resize_scheduler(self, workers):
        """Tear down the connection pool and scheduler and rebuild them
        at the new width.  Safe between phases: the scheduler is always
        drained at phase boundaries, and aggregate counters are read
        from the pool only in :meth:`_finalise` (the new pool re-wraps
        the same underlying machine stack, so cache and retry state
        carry over untouched)."""
        workers = max(1, int(workers))
        if workers == self.workers:
            return
        self.scheduler.close()
        self.workers = workers
        pool_size = workers + 1 if workers > 1 else 1
        self.pool, self._pool_note = TargetConnectionPool.open(self.machine, pool_size)
        self.scheduler = ProbeScheduler(self.pool, workers)

    # -- crash durability helpers -------------------------------------

    def _checkpoint(self):
        """Snapshot the live run into a resumable checkpoint."""
        return DiscoveryCheckpoint(
            target=self.machine.target,
            completed=list(self._completed),
            report=self._report,
            state=self._state,
        )

    def _commit(self):
        """Durably publish the current checkpoint (no-op without a run
        directory)."""
        if self.durable is not None:
            self.durable.commit(self._checkpoint())

    def _crash_point(self, kind, phase, index=None):
        """A crash-injection boundary: the CrashPlan, when armed, dies
        here -- strictly *after* the matching durable commit, so what
        the harness tests is exactly what a real kill -9 leaves behind."""
        if self.crash_plan is not None:
            self.crash_plan.check(kind, phase, index)

    def _persist_interrupt(self, checkpoint):
        """Best-effort durable save when a phase fails terminally: into
        the run's own directory, or a freshly created fallback one, so
        the caller never needs to hold the in-memory checkpoint alive."""
        try:
            if self.durable is None:
                self.durable = DurableRun.attach(
                    auto_run_directory(self.machine.target), run_config(self)
                )
            self.durable.commit(checkpoint)
            return str(self.durable.directory)
        except (OSError, DiscoveryError):
            return None  # the in-memory checkpoint still works

    def _progress(self, phase):
        """The per-sample completion records of one fan-out phase.
        Each record commits a checkpoint generation and exposes a
        ``sample`` crash boundary to the harness."""
        store = self._state.setdefault("progress", {}).setdefault(phase, {})

        def on_record(count):
            self._commit()
            self._crash_point("sample", phase, count)

        return PhaseProgress(store, chunk=self.checkpoint_every, on_record=on_record)

    # -- quarantine helper --------------------------------------------

    @staticmethod
    def _quarantine(sample, phase, exc):
        sample.discard(f"quarantined ({phase}): {exc}")

    # -- phases --------------------------------------------------------

    def _phase_enquire(self, report, state):
        report.enquire = enquire(self.machine)

    def _phase_syntax(self, report, state):
        log = probe.ProbeLog()
        syntax = DiscoveredSyntax()
        syntax.comment_char = probe.discover_comment_char(self.machine, log)
        probe.discover_literal_syntax(self.machine, syntax, log)
        probe.discover_loadimm(self.machine, syntax, log)
        report.syntax = syntax
        report.probe_log = log

    def _phase_generate(self, report, state):
        # Spec construction draws from the seeded rng strictly in order
        # and is cheap, so it happens in one shot; realisation (one
        # compile and one run per sample) fans out in completion-record
        # chunks.  On mid-phase resume the corpus already exists and the
        # unrealised suffix is exactly the samples still pending.
        if report.corpus is None:
            generator = SampleGenerator(self.machine, report.syntax, seed=self.seed)
            report.corpus = generator.build_corpus(word_bits=report.enquire.word_bits)
        corpus = report.corpus
        progress = self._progress("sample generation")
        pending = [
            s
            for s in corpus.samples
            if s.expected_output is None and s.discarded is None
        ]
        for chunk in chunked(pending, progress.chunk):
            self.scheduler.map_values(
                lambda sample, conn: realise_sample(corpus.bind(conn), sample),
                chunk,
                phase="sample generation",
            )
            progress.record(progress.next_key(), [s.name for s in chunk])

    def _phase_registers(self, report, state):
        asms = [s.asm_text for s in report.corpus.samples if s.usable]
        probe.discover_registers(
            self.machine,
            report.syntax,
            asms,
            report.probe_log,
            scheduler=self.scheduler,
            progress=self._progress("register discovery"),
        )

    def _phase_extract(self, report, state):
        for sample in report.corpus.samples:
            if not sample.usable:
                continue
            try:
                extract_region(sample, report.syntax)
            except DiscoveryError as exc:
                sample.discard(f"extraction failed: {exc}")
            except TargetError as exc:
                self._quarantine(sample, "region extraction", exc)

    def _phase_mutation(self, report, state):
        if report.engine is None:
            engine = MutationEngine(
                report.corpus, word_bits=report.enquire.word_bits, seed=self.seed
            )
            report.engine = engine
            # Corpus-wide facts are computed once, sequentially, *before*
            # the fan-out: the functional-register set and the pilot
            # sample's clobber-safe set (which seeds the engine's
            # fast-path guess).  Forked engines then share them
            # read-only, so the answers -- and the rng draws that
            # produced them -- are identical for any worker count.  On
            # resume the pickled engine carries both facts and its rng
            # position, so nothing is recomputed or redrawn.
            engine.functional_registers()
            pilot = next(iter(report.corpus.usable_samples()), None)
            if pilot is not None:
                engine.clobber_safe_registers(pilot)
        engine = report.engine
        progress = self._progress("mutation analysis")
        analysed = set()
        for names in progress.payloads():
            analysed.update(names)
        tasks = [
            s
            for s in report.corpus.samples
            if s.usable and s.name not in analysed
        ]

        def analyse(sample, conn):
            fork = engine.fork(sample.name, machine=conn)
            Preprocessor(fork).process(sample)
            return fork

        for chunk in chunked(tasks, progress.chunk):
            outcomes = self.scheduler.map(analyse, chunk, phase="mutation analysis")
            for sample, outcome in zip(chunk, outcomes):
                if outcome.ok:
                    engine.absorb(outcome.value)
                elif isinstance(outcome.error, DiscoveryInterrupted):
                    raise outcome.error
                elif isinstance(outcome.error, DiscoveryError):
                    sample.discard(f"preprocessing failed: {outcome.error}")
                elif isinstance(outcome.error, TargetError):
                    self._quarantine(sample, "mutation analysis", outcome.error)
                else:
                    raise outcome.error
            # Quarantined and discarded samples are recorded *done* too:
            # resume must not silently retry them (their probes failed
            # terminally; the discarded reason rides the checkpoint).
            progress.record(progress.next_key(), [s.name for s in chunk])

    def _phase_addresses(self, report, state):
        report.addr_map = discover_address_map(report.corpus)

    def _phase_graphmatch(self, report, state):
        # The engine installs the worker context here -- after mutation
        # analysis fully annotated the samples, before the first fan-out
        # -- so forked workers inherit the preprocessed corpus.
        self.extractor.prepare(
            report.corpus,
            report.addr_map,
            report.enquire.word_bits,
            use_likelihood=self.use_likelihood,
        )
        state["graph_roles"] = self.extractor.graph_roles()

    def _phase_reverse_interp(self, report, state):
        if not self.extractor._prepared:  # resumed past graph matching
            self.extractor.prepare(
                report.corpus,
                report.addr_map,
                report.enquire.word_bits,
                use_likelihood=self.use_likelihood,
            )
        # Shard outcomes are the phase's completion records: each solved
        # shard commits, and resume hands the already-solved ones back so
        # only the unsolved suffix re-runs.  Shards are seeded per-index,
        # so the merge -- and the spec -- cannot tell the difference.
        progress = self._progress("reverse interpretation")
        done = {o.index: o for o in progress.payloads()}
        report.extraction = self.extractor.extract(
            state.get("graph_roles", {}),
            self.ri_budget,
            completed=done,
            on_shard=lambda outcome: progress.record(
                f"shard-{outcome.index:05d}", outcome
            ),
        )
        report.extraction_stats = self.extractor.stats

    def _phase_branches(self, report, state):
        report.branch_model = BranchAnalysis(
            report.engine, report.addr_map, report.enquire.word_bits
        ).analyse()

    def _phase_calling(self, report, state):
        try:
            report.call_protocol = CallAnalysis(report.engine, report.addr_map).analyse()
        except DiscoveryError as exc:
            report.notes.append(f"calling convention: {exc}")

    def _phase_frames(self, report, state):
        frame = discover_frame(self.machine, report.syntax)
        print_tpl, exit_tpl, data_lines = discover_idioms(report.corpus, report.addr_map)
        frame.print_template = print_tpl
        frame.exit_template = exit_tpl
        frame.data_lines = data_lines
        report.frame_model = frame

    def _phase_synthesize(self, report, state):
        synthesizer = Synthesizer(
            report.engine,
            report.addr_map,
            report.extraction,
            report.enquire,
            report.probe_log,
            seed=self.seed,
        )
        report.spec = synthesizer.synthesize(
            branch_model=report.branch_model,
            call_protocol=report.call_protocol,
            frame_model=report.frame_model,
        )

    def _phase_speclint(self, report, state):
        """Static verification of the synthesised description.  Findings
        never abort discovery -- they travel on the report and the spec
        so summaries, reports and the CLI can gate on them."""
        from repro.analysis import lint_spec

        report.diagnostics = lint_spec(report.spec)
        report.spec.diagnostics = report.diagnostics.to_dicts()

    def _phase_verify(self, report, state):
        """Translation validation of the synthesised description against
        the target's own machine model (opt-in, ``verify=True`` /
        ``repro discover --verify``).  Like lint, findings never abort
        discovery; they merge into the report's diagnostics and the
        spec's summary."""
        from repro.analysis.verify import build_model, verify_spec

        model = build_model(self.machine.target)
        result = verify_spec(report.spec, model, seed=self.seed)
        report.verify_stats = result.stats
        if report.diagnostics is None:
            from repro.analysis.diagnostics import DiagnosticSet

            report.diagnostics = DiagnosticSet()
        report.diagnostics.extend(result.diagnostics)
        report.spec.diagnostics = report.diagnostics.to_dicts()


class _Clock:
    def __init__(self, report):
        self.report = report

    def __call__(self, name):
        return _Phase(self.report, name)


class _Phase:
    def __init__(self, report, name):
        self.report = report
        self.name = name

    def __enter__(self):
        self.start = time.perf_counter()
        self.cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.report.timings.append(
                PhaseTiming(
                    self.name,
                    time.perf_counter() - self.start,
                    time.process_time() - self.cpu_start,
                )
            )
        return False
