"""Operand model shared by the assemblers and executors.

Pre-link, immediate and displacement fields may hold a :class:`Sym`
(a symbolic reference to a label); the linker replaces these with
concrete integers (data addresses or instruction indices).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sym:
    """A symbolic reference to a label, resolved by the linker."""

    name: str

    def __repr__(self):
        return f"Sym({self.name})"


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    name: str

    def __repr__(self):
        return f"Reg({self.name})"


@dataclass(frozen=True)
class Imm:
    """An immediate operand; ``value`` is an int or a :class:`Sym`."""

    value: object

    def __repr__(self):
        return f"Imm({self.value})"


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``disp(base)`` with optional parts.

    ``disp`` is an int or :class:`Sym`; ``base`` is a register name or
    ``None`` for absolute addressing.
    """

    disp: object = 0
    base: str | None = None

    def __repr__(self):
        return f"Mem({self.disp}, base={self.base})"


@dataclass(frozen=True)
class Lab:
    """A code label operand (branch or call target).

    ``target`` is a :class:`Sym` before linking and an instruction index
    (or negative builtin id) afterwards.
    """

    target: object

    def __repr__(self):
        return f"Lab({self.target})"


@dataclass(frozen=True)
class Bare:
    """A bare identifier whose meaning depends on instruction context.

    ``jmp L2`` makes it a code label; ``movl z1, %eax`` makes it an
    absolute memory reference to a global.  The assembler coerces it per
    the instruction form it is matching against.
    """

    name: str


def operand_kind(op):
    """Single-letter signature code for *op*: r/i/m/l."""
    if isinstance(op, Reg):
        return "r"
    if isinstance(op, Imm):
        return "i"
    if isinstance(op, Mem):
        return "m"
    if isinstance(op, Lab):
        return "l"
    raise TypeError(f"not an operand: {op!r}")


def coerce_to_signature(operands, signature):
    """Match operands against a signature, resolving :class:`Bare` items.

    A signature is a tuple of strings, one per operand; each string lists
    the accepted kind letters (e.g. ``("ri", "r")`` is "register or
    immediate, then register").  Returns the (possibly coerced) operand
    list, or ``None`` if the operands do not fit.
    """
    if len(operands) != len(signature):
        return None
    result = []
    for op, codes in zip(operands, signature):
        if isinstance(op, Bare):
            if "l" in codes:
                result.append(Lab(Sym(op.name)))
            elif "m" in codes:
                result.append(Mem(Sym(op.name), None))
            else:
                return None
        elif operand_kind(op) in codes:
            result.append(op)
        else:
            return None
    return result


def matches_signature(operands, signature):
    """Check a list of operands against a signature (no Bare coercion)."""
    return coerce_to_signature(operands, signature) is not None
