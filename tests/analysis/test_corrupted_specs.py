"""Golden diagnostics: seeded corruptions of known-good specs.

Each corruption mutates a deepcopy of a real discovered description in
one specific way and asserts that speclint reports exactly the expected
diagnostic code.  The battery runs against every simulated
architecture, skipping corruptions a particular description cannot
express (no immediate-range rule, no chain rules, ...).
"""

import copy

import pytest

from repro.analysis import lint_spec
from repro.discovery.asmmodel import Slot
from tests.analysis.conftest import corrupt_spec
from tests.discovery.conftest import TARGETS


def _some_rule(spec):
    return spec.rules[sorted(spec.rules)[0]]


# -- the corruption battery: name -> (mutate(spec) -> applied?, code) --


def drop_binary_rule(spec):
    if "Plus" not in spec.rules:
        return False
    del spec.rules["Plus"]
    spec.imm_rules.pop("Plus", None)
    return True


def leave_imm_only_rule(spec):
    if "Plus" not in spec.rules or "Plus" not in spec.imm_rules:
        return False
    del spec.rules["Plus"]
    return True


def drop_branch_rule(spec):
    if not spec.branch or not spec.branch.rules:
        return False
    del spec.branch.rules[sorted(spec.branch.rules)[0]]
    return True


def drop_load_template(spec):
    spec.load_template = []
    return True


def never_define_result(spec):
    rule = _some_rule(spec)
    rule.instrs = []
    rule.two_address = False
    rule.result_literal = None
    return True


def read_scratch_before_def(spec):
    if not spec.reg_move:
        return False
    rename = {"src": "scratch0", "dest": "scratch1"}
    probe = spec.reg_move[0].clone(
        operands=[
            Slot(rename[op.name]) if isinstance(op, Slot) else op
            for op in spec.reg_move[0].operands
        ]
    )
    rule = _some_rule(spec)
    rule.instrs = [probe] + list(rule.instrs)
    return True


def result_in_allocatable_literal(spec):
    if not spec.allocatable:
        return False
    _some_rule(spec).result_literal = spec.allocatable[0]
    return True


def unknown_template_instruction(spec):
    rule = _some_rule(spec)
    rule.instrs = [rule.instrs[0].clone(mnemonic="frobnicate")] + list(
        rule.instrs[1:]
    )
    return True


def unverified_rule(spec):
    rule = _some_rule(spec)
    rule.verified = False
    rule.runtime_verified = False
    return True


def class_escapes_allocatable(spec):
    _some_rule(spec).slot_classes["left"] = ["%bogus99"]
    return True


def empty_register_class(spec):
    _some_rule(spec).slot_classes["left"] = []
    return True


def hardwired_reg_allocatable(spec):
    if not spec.allocatable:
        return False
    spec.register_notes[spec.allocatable[0]] = "hardwired to 0"
    return True


def empty_imm_condition(spec):
    if not spec.imm_rules:
        return False
    spec.imm_rules[sorted(spec.imm_rules)[0]].imm_range = (5, -5)
    return True


def imm_rule_without_imm_slot(spec):
    if not spec.imm_rules:
        return False
    spec.imm_rules[sorted(spec.imm_rules)[0]].right_imm = False
    return True


def widen_imm_condition(spec):
    for ir_op in sorted(spec.imm_rules):
        rule = spec.imm_rules[ir_op]
        if rule.imm_range is None:
            continue
        lo, hi = rule.imm_range
        rule.imm_range = (lo - 4096, hi + 4096)
        return True
    return False


def duplicate_template(spec):
    if "Plus" not in spec.rules or "Minus" not in spec.rules:
        return False
    clone = copy.deepcopy(spec.rules["Plus"])
    clone.ir_op = "Minus"
    spec.rules["Minus"] = clone
    return True


def rule_for_unknown_operator(spec):
    clone = copy.deepcopy(_some_rule(spec))
    clone.ir_op = "Frobnicate"
    spec.rules["Frobnicate"] = clone
    return True


def undeclared_chain_mode(spec):
    if not spec.chain_rules:
        return False
    spec.addressing_modes.clear()
    return True


def unreachable_addressing_mode(spec):
    spec.addressing_modes["xyzzy+plugh"] = "loadAddr(?)"
    return True


BATTERY = [
    (drop_binary_rule, "SPEC001"),
    (leave_imm_only_rule, "SPEC002"),
    (drop_branch_rule, "SPEC003"),
    (drop_load_template, "SPEC004"),
    (never_define_result, "SPEC010"),
    (read_scratch_before_def, "SPEC011"),
    (result_in_allocatable_literal, "SPEC012"),
    (unknown_template_instruction, "SPEC013"),
    (unverified_rule, "SPEC014"),
    (class_escapes_allocatable, "SPEC020"),
    (empty_register_class, "SPEC021"),
    (hardwired_reg_allocatable, "SPEC022"),
    (empty_imm_condition, "SPEC030"),
    (imm_rule_without_imm_slot, "SPEC031"),
    (widen_imm_condition, "SPEC032"),
    (duplicate_template, "SPEC040"),
    (rule_for_unknown_operator, "SPEC041"),
    (unreachable_addressing_mode, "SPEC042"),
    (undeclared_chain_mode, "SPEC043"),
]


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("corrupt,code", BATTERY, ids=[c.__name__ for c, _ in BATTERY])
def test_corruption_is_caught(target, corrupt, code):
    spec = corrupt_spec(target)
    baseline = set(lint_spec(spec).codes())
    assert code not in baseline, f"{target} already reports {code} uncorrupted"
    if not corrupt(spec):
        pytest.skip(f"{target} cannot express {corrupt.__name__}")
    found = lint_spec(spec).codes()
    assert code in found, (
        f"{target}: {corrupt.__name__} expected {code}, got {found}"
    )


@pytest.mark.parametrize("target", TARGETS)
def test_every_code_exercised_somewhere(target):
    """Sanity: the battery is applicable widely enough that each SPEC
    code is triggered on at least one architecture overall (checked
    cheaply here via x86 as the canonical target)."""
    if target != "x86":
        pytest.skip("aggregate check runs once")
    triggered = set()
    for t in TARGETS:
        for corrupt, code in BATTERY:
            spec = corrupt_spec(t)
            if corrupt(spec):
                if code in lint_spec(spec).codes():
                    triggered.add(code)
    expected = {code for _c, code in BATTERY}
    assert triggered == expected, expected - triggered


def test_mips_equal_cost_overlap_is_flagged():
    """The real MIPS description used to carry SPEC033 (register and
    unrestricted-immediate rules at equal cost); the synthesiser now
    breaks the tie with a +1 cost bias on the register rule.  Undoing
    that bias must resurface the warning -- proving the lint still
    detects the ambiguity and that the fix is exactly the bias."""
    from tests.discovery.conftest import discovery_report

    spec = corrupt_spec("mips")
    undone = 0
    for rule in spec.rules.values():
        if getattr(rule, "cost_bias", 0):
            rule.cost_bias = 0
            undone += 1
    assert undone, "expected the MIPS tie-break to have biased a rule"
    assert "SPEC033" in lint_spec(spec).codes()

    clean = lint_spec(discovery_report("mips").spec)
    assert "SPEC033" not in clean.codes()
