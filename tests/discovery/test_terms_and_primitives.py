"""E13 (paper Figure 14): the primitive set and the term language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import wordops
from repro.discovery import primitives, terms
from repro.discovery.reverse_interp import _has_disguised_identity


class TestFig14Primitives:
    def test_the_full_figure_14_table_is_present(self):
        expected = {
            "add", "sub", "mul", "div", "mod", "abs", "neg", "not", "move",
            "and", "or", "xor", "shiftLeft", "shiftRight", "ignore1",
            "compare", "isEQ", "isLE", "brTrue", "brFalse", "nop",
            "load", "store", "loadLit", "loadAddr",
        }
        assert expected <= set(primitives.PRIMITIVES)

    def test_types_match_the_figure(self):
        assert primitives.PRIMITIVES["compare"].result == "C"
        assert primitives.PRIMITIVES["isLE"].signature == ("C",)
        assert primitives.PRIMITIVES["brTrue"].signature == ("B", "L")
        assert primitives.PRIMITIVES["load"].signature == ("A",)
        assert primitives.PRIMITIVES["store"].signature == ("A", "I")

    def test_ignore1_discards_its_first_argument(self):
        _arity, fn = primitives.TERM_PRIMS.get("add")
        del fn
        assert primitives.PRIMITIVES["ignore1"].comment == "ignore1(a,b) = b"

    @given(
        a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
        b=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
    def test_term_prims_respect_word_precision(self, a, b):
        for name, (arity, fn) in primitives.TERM_PRIMS.items():
            if arity != 2:
                continue
            if name in ("div", "mod") and wordops.mask(b, 32) == 0:
                continue
            value = fn(32, wordops.mask(a, 32), wordops.mask(b, 32))
            assert 0 <= wordops.mask(value, 32) < 2**32


class TestTermLanguage:
    def test_sizes(self):
        assert terms.term_size(("val", 0)) == 1
        assert terms.term_size(("add", ("val", 0), ("const", 1))) == 3
        assert terms.term_size(("neg", ("add", ("val", 0), ("val", 1)))) == 4

    def test_rendering(self):
        term = ("store" if False else "add", ("val", 0), ("ireg", "%eax"))
        assert terms.render_term(term) == "add(arg0, %eax)"
        effects = ((("mem", 1), ("val", 0)),)
        assert terms.render_effects(effects) == "M[arg1] <- arg0"

    def test_eval_term_is_word_exact(self):
        term = ("add", ("val", 0), ("val", 1))
        value = terms.eval_term(term, lambda leaf: 2**31 - 1 if leaf == ("val", 0) else 1, 32)
        assert value == 2**31  # wrapped, not promoted

    def test_eval_term_raises_on_zero_division(self):
        term = ("div", ("val", 0), ("const", 0))
        with pytest.raises(terms.TermEvalError):
            terms.eval_term(term, lambda leaf: 7, 32)

    def test_enumeration_is_shortest_first(self):
        leaves = [("val", 0), ("val", 1)]
        stream = list(terms.enumerate_terms(leaves, max_size=3))
        sizes = [terms.term_size(t) for t in stream]
        assert sizes == sorted(sizes)

    def test_enumeration_covers_the_vax_addl3_shape(self):
        # store(a, add(load(b), load(c))) reduces to add over two value
        # leaves in the effect model -- size 3, within reach.
        leaves = [("val", 0), ("val", 1)]
        stream = terms.enumerate_terms(leaves, max_size=3)
        assert ("add", ("val", 0), ("val", 1)) in set(stream)

    def test_constant_results_enumerated_after_leaves(self):
        leaves = [("val", 0)]
        stream = list(terms.enumerate_terms(leaves, max_size=1))
        assert stream[0] == ("val", 0)
        assert ("const", 0) in stream


class TestDisguisedIdentities:
    @pytest.mark.parametrize(
        "term",
        [
            ("mul", ("val", 0), ("const", 1)),
            ("mul", ("const", 1), ("val", 0)),
            ("add", ("val", 0), ("const", 0)),
            ("sub", ("val", 0), ("const", 0)),
            ("shiftLeft", ("val", 0), ("const", 0)),
            ("neg", ("mul", ("val", 0), ("const", 1))),
        ],
    )
    def test_rejected(self, term):
        assert _has_disguised_identity(term)

    @pytest.mark.parametrize(
        "term",
        [
            ("val", 0),
            ("sub", ("const", 0), ("val", 0)),  # a real negation
            ("div", ("const", 1), ("val", 0)),  # a real computation
            ("add", ("val", 0), ("const", 1)),
            ("mul", ("val", 0), ("val", 1)),
        ],
    )
    def test_accepted(self, term):
        assert not _has_disguised_identity(term)
