"""Shared benchmark-artifact emission.

One tiny helper owns the results directory and the merge-write, so
every bench module (scheduler, fault tolerance, extraction, ...) emits
``benchmarks/results/BENCH_<module>.json`` the same way: one file per
module, one key per test, merged key-wise so re-running a single
parametrization updates only its entry.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def record(module, payload):
    """Merge *payload* (a dict of test-name -> numbers) into the
    module's BENCH json; returns the path written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{module}.json"
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}  # a torn previous write; start fresh
    existing.update(payload)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    return path


def jsonable(value):
    """Best-effort coercion for extra_info payloads."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)
