"""Memory model: endianness, sizes, strings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.machines.executor import Memory


def test_little_endian_layout():
    mem = Memory("little")
    mem.store(100, 0x01020304, 4)
    assert mem.load(100, 1) == 0x04
    assert mem.load(103, 1) == 0x01


def test_big_endian_layout():
    mem = Memory("big")
    mem.store(100, 0x01020304, 4)
    assert mem.load(100, 1) == 0x01
    assert mem.load(103, 1) == 0x04


def test_uninitialised_reads_zero():
    assert Memory("little").load(12345, 4) == 0


def test_signed_load():
    mem = Memory("little")
    mem.store(0, -5, 4)
    assert mem.load(0, 4, signed=True) == -5
    assert mem.load(0, 4) == 0xFFFFFFFB


def test_bad_endianness_rejected():
    with pytest.raises(ValueError):
        Memory("middle")


def test_cstring_round_trip():
    mem = Memory("little")
    mem.store_bytes(50, b"hello\0")
    assert mem.load_cstring(50) == "hello"


def test_unterminated_cstring_raises():
    mem = Memory("little")
    mem.store_bytes(0, bytes([65] * 5000))
    with pytest.raises(ExecutionError):
        mem.load_cstring(0)


def test_copy_is_independent():
    mem = Memory("little")
    mem.store(0, 1, 4)
    clone = mem.copy()
    clone.store(0, 2, 4)
    assert mem.load(0, 4) == 1
    assert clone.load(0, 4) == 2


@given(
    value=st.integers(min_value=-(2**63), max_value=2**63 - 1),
    size=st.sampled_from([1, 2, 4, 8]),
    endian=st.sampled_from(["little", "big"]),
)
def test_store_load_round_trip(value, size, endian):
    mem = Memory(endian)
    mem.store(1000, value, size)
    assert mem.load(1000, size) == value & ((1 << (8 * size)) - 1)
