"""Per-target code generators for the miniature C compiler."""
