"""Crash-durable discovery runs: on-disk checkpoints and exact resume.

PR 1 made the pipeline *interruption-aware*: a terminal phase failure
raises :class:`~repro.discovery.driver.DiscoveryInterrupted` carrying an
in-memory :class:`~repro.discovery.driver.DiscoveryCheckpoint`.  That
checkpoint dies with the process -- and the discovery unit is exactly
the workload where processes die: a long-running probe loop against a
slow, flaky remote target.  This module persists the checkpoint to a
**run directory** so ``repro discover --resume RUNDIR`` restarts after a
``kill -9`` and produces a spec bit-for-bit identical to an
uninterrupted run.

Layout of a run directory::

    RUNDIR/
      run.json           # schema, target, and the full machine config
      ckpt-000001.bin    # checkpoint generations, newest wins
      ckpt-000002.bin

Three guarantees:

* **Atomic commits.**  A checkpoint is written to a temp file, flushed
  and fsynced, then published with an atomic ``os.replace`` (and a
  directory fsync where the platform supports it).  A crash mid-commit
  leaves at worst a stray ``*.tmp`` file, never a half-written
  generation under a committed name.
* **Corruption fallback.**  Every generation carries a magic string, a
  schema version and a SHA-256 of its payload.  The loader walks
  generations newest-first and returns the first one that validates;
  truncated files, foreign schema versions and torn headers are
  reported as warnings, never exceptions.  The previous good generation
  is kept on disk for exactly this reason.
* **Exact mid-phase resume.**  The checkpoint state carries per-sample
  completion records for the fan-out phases (sample generation,
  register probing, mutation analysis, reverse interpretation), so a
  resumed run re-does only the samples whose results never committed --
  cheap with a warm probe cache, and still exact with a cold one.

Serialisation is the **portable structured codec**
(:mod:`repro.discovery.portable`) behind the same schema-versioned,
checksummed envelope: the checkpoint holds live analysis objects
(samples, DFGs, the mutation engine with its RNG mid-stream positions)
whose fidelity is what makes the resumed spec identical, and the codec
encodes them as deterministic, closed-world tagged JSON so *any* worker
on *any* build can adopt the run -- the property the campaign
supervisor's crash adoption rests on.  Schema-1 generations (the
pickle era, one release back) are still readable: the loader falls back
to :mod:`pickle` with a warning and bumps :data:`LEGACY_PICKLE_LOADS`
so tests can pin that the happy path performs **zero** pickle loads;
``repro migrate-run`` rewrites such a directory in place.  Target
connections are *not* serialised -- the codec excludes them and the
driver rebinds the corpus to its freshly opened connection on resume;
:func:`machine_from_config` rebuilds the same connection stack (fault
plan, latency, fuel) from ``run.json``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import pickle
import tempfile
from contextlib import contextmanager

from repro.discovery import portable
from repro.errors import DiscoveryError

#: bump when the checkpoint payload layout changes.  Schema 2 is the
#: portable structured codec; schema 1 (pickle) is readable for one
#: release via the legacy fallback, anything else is foreign.
CHECKPOINT_SCHEMA = 2

#: the last schema whose payload was pickle; readable but counted
LEGACY_PICKLE_SCHEMA = 1

#: incremented on every pickle-fallback load -- the chaos tests assert
#: this stays zero on the happy path
LEGACY_PICKLE_LOADS = 0

#: first bytes of every checkpoint generation
MAGIC = b"repro-checkpoint\n"

#: committed generations kept on disk; older ones are pruned after a
#: successful commit, so corruption of the newest can always fall back
KEEP_GENERATIONS = 2

RUN_MANIFEST = "run.json"

#: lightweight progress sidecar, rewritten atomically at every commit.
#: Like the lease it is runtime state: outside the generation glob,
#: never read by the loader, carrying nothing spec-affecting -- it
#: exists so the service control plane (and ``repro client status``)
#: can report typed progress without thawing a full checkpoint body.
PROGRESS_FILE = "progress.json"


class CheckpointCorrupt(DiscoveryError):
    """One checkpoint generation failed validation (the loader falls
    back to an older generation; this never escapes :meth:`DurableRun.
    load_checkpoint`)."""


# -- machine-config introspection and reconstruction -------------------


def run_config(discovery):
    """The ``run.json`` payload for a driver: everything needed to
    rebuild the same machine stack and driver knobs on resume."""
    config = {
        "schema": CHECKPOINT_SCHEMA,
        "target": discovery.machine.target,
        "seed": discovery.seed,
        "ri_budget": discovery.ri_budget,
        "use_likelihood": discovery.use_likelihood,
        "workers": discovery.workers,
        "adaptive_workers": getattr(discovery, "adaptive_workers", False),
        "extract_procs": discovery.extractor.procs,
        "extract_memo": discovery.extractor.memo_enabled,
        "checkpoint_every": discovery.checkpoint_every,
        "flaky": 0.0,
        "fault_seed": None,
        "latency": 0.0,
        "fuel": None,
        "max_retries": None,
        "votes": None,
        "cache_dir": None,
        "cache_url": None,
    }
    if discovery.resilience is not None:
        config["max_retries"] = discovery.resilience.max_retries
        config["votes"] = discovery.resilience.votes
    cache = discovery.cache
    if cache is not None and getattr(cache, "directory", None) is not None:
        config["cache_dir"] = str(cache.directory)
    if cache is not None and getattr(cache, "url", None) is not None:
        config["cache_url"] = str(cache.url)
    layer = discovery.machine
    while layer is not None:
        plan = getattr(layer, "plan", None)
        if plan is not None and hasattr(plan, "rate"):
            config["flaky"] = plan.rate
            config["fault_seed"] = plan.seed
        if getattr(layer, "latency", None) is not None and hasattr(layer, "fuel"):
            config["latency"] = layer.latency
            config["fuel"] = layer.fuel
        layer = getattr(layer, "inner", None)
    return config


def machine_from_config(config):
    """Rebuild the (possibly fault-injected) target machine a run was
    started against.  Returns ``(machine, resilience_config)``; the
    resilience wrapper itself is applied by the driver, as on a fresh
    run."""
    from repro.discovery.resilience import ResilienceConfig
    from repro.machines.restore import machine_from_manifest

    machine = machine_from_manifest(config)
    resilience = ResilienceConfig()
    if config.get("max_retries") is not None:
        resilience.max_retries = config["max_retries"]
    if config.get("votes") is not None:
        resilience.votes = config["votes"]
    return machine, resilience


# -- checkpoint serialisation ------------------------------------------


@contextmanager
def detach_runtime(checkpoint):
    """Temporarily strip live target connections from a checkpoint
    before serialising; restores them before returning control (the
    driver keeps using the same objects after a commit).  The portable
    codec also excludes these fields by registry policy -- this guard
    keeps the invariant visible at the call site and covers any future
    payload that aliases the corpus connection."""
    corpus = checkpoint.report.corpus
    if corpus is None:
        yield checkpoint
        return
    saved_machine = corpus.machine
    saved_cache = corpus._init_cache
    corpus.machine = None
    corpus._init_cache = {}
    try:
        yield checkpoint
    finally:
        corpus.machine = saved_machine
        corpus._init_cache = saved_cache


def freeze_body(checkpoint):
    """The portable payload bytes of a checkpoint -- deterministic, so
    equal checkpoints freeze to equal bytes on every build (this is
    what the lease-hygiene tests hash)."""
    with detach_runtime(checkpoint):
        return portable.dumps(
            {
                "target": checkpoint.target,
                "completed": list(checkpoint.completed),
                "state": checkpoint.state,
                "report": checkpoint.report,
            }
        )


def freeze_checkpoint(checkpoint):
    """Serialise a checkpoint into a self-validating binary blob."""
    payload = freeze_body(checkpoint)
    header = json.dumps(
        {
            "schema": CHECKPOINT_SCHEMA,
            "format": portable.PORTABLE_FORMAT,
            "target": checkpoint.target,
            "length": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        },
        sort_keys=True,
    ).encode("utf-8")
    return MAGIC + header + b"\n" + payload


def parse_envelope(blob):
    """Validate a generation's envelope; ``(header, payload)`` on
    success, :class:`CheckpointCorrupt` on any defect."""
    if not blob.startswith(MAGIC):
        raise CheckpointCorrupt("bad magic (not a checkpoint file)")
    stream = io.BytesIO(blob[len(MAGIC) :])
    header_line = stream.readline()
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise CheckpointCorrupt(f"unparsable header: {exc}") from exc
    payload = stream.read()
    if len(payload) != header.get("length"):
        raise CheckpointCorrupt(
            f"truncated payload: {len(payload)} of {header.get('length')} bytes"
        )
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        raise CheckpointCorrupt("payload checksum mismatch")
    return header, payload


def generation_schema(blob):
    """The schema version a generation claims in its header, or None
    when the header is unreadable (callers that care about validity use
    :func:`parse_envelope`)."""
    if not blob.startswith(MAGIC):
        return None
    try:
        return json.loads(blob[len(MAGIC) :].split(b"\n", 1)[0]).get("schema")
    except ValueError:
        return None


def thaw_checkpoint(blob):
    """Validate and deserialise one checkpoint generation.  Raises
    :class:`CheckpointCorrupt` on any defect; the caller falls back.

    Schema 2 payloads decode through the portable codec (no pickle
    involved); schema 1 -- the previous release's pickle body -- still
    loads, but bumps :data:`LEGACY_PICKLE_LOADS` so the zero-pickle
    guarantee stays testable."""
    global LEGACY_PICKLE_LOADS
    from repro.discovery.driver import DiscoveryCheckpoint

    header, payload = parse_envelope(blob)
    schema = header.get("schema")
    if schema == CHECKPOINT_SCHEMA:
        try:
            data = portable.loads(payload)
        except portable.PortableError as exc:
            raise CheckpointCorrupt(f"payload does not decode: {exc}") from exc
    elif schema == LEGACY_PICKLE_SCHEMA:
        try:
            data = pickle.loads(payload)
        except Exception as exc:  # torn pickle inside a valid envelope
            raise CheckpointCorrupt(f"payload does not unpickle: {exc}") from exc
        LEGACY_PICKLE_LOADS += 1
    else:
        raise CheckpointCorrupt(
            f"schema version {schema!r} (this build reads "
            f"{CHECKPOINT_SCHEMA}, legacy {LEGACY_PICKLE_SCHEMA})"
        )
    return DiscoveryCheckpoint(
        target=data["target"],
        completed=data["completed"],
        report=data["report"],
        state=data["state"],
    )


# -- the run directory -------------------------------------------------


def _fsync_directory(path):
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platform without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class DurableRun:
    """One discovery run's on-disk home: manifest plus checkpoint
    generations."""

    def __init__(self, directory, config=None):
        self.directory = pathlib.Path(directory)
        self.config = config
        self.commits = 0

    # -- construction --------------------------------------------------

    @classmethod
    def attach(cls, directory, config):
        """Create (or re-open) a run directory for a fresh run.  A
        pre-existing manifest must agree on the target -- resuming a
        ``vax`` run against ``mips`` answers would corrupt both."""
        run = cls(directory, config=dict(config))
        run.directory.mkdir(parents=True, exist_ok=True)
        manifest = run.directory / RUN_MANIFEST
        if manifest.exists():
            existing = cls.open(directory)
            if existing.config.get("target") != config.get("target"):
                raise DiscoveryError(
                    f"run directory {run.directory} belongs to target "
                    f"{existing.config.get('target')!r}, not {config.get('target')!r}"
                )
            run.config = existing.config
        else:
            run._write_manifest()
        run.commits = len(run.generations())
        return run

    @classmethod
    def open(cls, directory):
        """Open an existing run directory (the ``--resume`` path)."""
        run = cls(directory)
        manifest = run.directory / RUN_MANIFEST
        if not manifest.exists():
            raise DiscoveryError(f"no {RUN_MANIFEST} in {run.directory}")
        try:
            run.config = json.loads(manifest.read_text())
        except ValueError as exc:
            raise DiscoveryError(
                f"unreadable {RUN_MANIFEST} in {run.directory}: {exc}"
            ) from exc
        run.commits = len(run.generations())
        return run

    def _write_manifest(self):
        self._atomic_write(
            self.directory / RUN_MANIFEST,
            (json.dumps(self.config, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )

    # -- commits -------------------------------------------------------

    def generations(self):
        """Committed checkpoint paths, oldest first."""
        return sorted(self.directory.glob("ckpt-*.bin"))

    def _next_generation(self):
        paths = self.generations()
        if not paths:
            return 1
        last = paths[-1].stem.split("-")[-1]
        try:
            return int(last) + 1
        except ValueError:
            return len(paths) + 1

    def _atomic_write(self, path, blob):
        fd, tmp = tempfile.mkstemp(
            dir=str(self.directory), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_directory(self.directory)

    def commit(self, checkpoint):
        """Durably publish a checkpoint as the newest generation, then
        prune generations beyond :data:`KEEP_GENERATIONS`."""
        blob = freeze_checkpoint(checkpoint)
        generation = self._next_generation()
        path = self.directory / f"ckpt-{generation:06d}.bin"
        self._atomic_write(path, blob)
        self.commits += 1
        for stale in self.generations()[:-KEEP_GENERATIONS]:
            try:
                stale.unlink()
            except OSError:
                pass
        self._write_progress(checkpoint, generation)
        return path

    def _write_progress(self, checkpoint, generation):
        """The :data:`PROGRESS_FILE` sidecar: completed phases plus
        per-phase completion-record counts, cheap enough to rewrite on
        every commit and cheap enough for a control plane to poll."""
        records = checkpoint.state.get("progress") or {}
        payload = {
            "target": checkpoint.target,
            "generation": generation,
            "completed": list(checkpoint.completed),
            "phase_records": {
                phase: len(store) for phase, store in sorted(records.items())
            },
        }
        try:
            self._atomic_write(
                self.directory / PROGRESS_FILE,
                (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
                    "utf-8"
                ),
            )
        except OSError:
            pass  # progress is advisory; never fail a commit over it

    def read_progress(self):
        """The progress sidecar as a dict, or None (pre-sidecar run
        directories, torn writes)."""
        try:
            return json.loads((self.directory / PROGRESS_FILE).read_text())
        except (OSError, ValueError):
            return None

    # -- loading -------------------------------------------------------

    def load_checkpoint(self):
        """The newest checkpoint that validates, plus warnings for every
        generation skipped on the way there.  ``(None, warnings)`` when
        no generation is loadable (the caller starts from scratch)."""
        warnings = []
        for path in reversed(self.generations()):
            try:
                blob = path.read_bytes()
                checkpoint = thaw_checkpoint(blob)
            except CheckpointCorrupt as exc:
                warnings.append(f"checkpoint {path.name} unusable: {exc}")
                continue
            except OSError as exc:
                warnings.append(f"checkpoint {path.name} unreadable: {exc}")
                continue
            if checkpoint.target != self.config.get("target"):
                warnings.append(
                    f"checkpoint {path.name} is for {checkpoint.target!r}, "
                    f"manifest says {self.config.get('target')!r}"
                )
                continue
            if generation_schema(blob) == LEGACY_PICKLE_SCHEMA:
                warnings.append(
                    f"checkpoint {path.name} is legacy pickle (schema "
                    f"{LEGACY_PICKLE_SCHEMA}); run `repro migrate-run "
                    f"{self.directory}` to convert it"
                )
            return checkpoint, warnings
        return None, warnings

    def describe(self):
        gens = self.generations()
        newest = gens[-1].name if gens else "(no checkpoints yet)"
        return f"run directory {self.directory}: {len(gens)} generation(s), {newest}"


def auto_run_directory(target):
    """A freshly created fallback run directory, used to persist the
    checkpoint of an interrupted run that was started without
    ``--run-dir`` (satellite: the caller must never lose the checkpoint
    just because they did not plan for the crash)."""
    return tempfile.mkdtemp(prefix=f"repro-run-{target}-")


# -- per-sample completion records -------------------------------------


class PhaseProgress:
    """The per-sample completion records of one fan-out phase.

    Lives inside ``checkpoint.state["progress"][phase]`` -- a plain dict
    of record-key -> payload -- so it serialises with the checkpoint.
    ``record`` stores the payload *then* notifies the driver, whose
    callback commits a new generation (and gives the crash-injection
    harness its sample boundary); a record is therefore durable before
    the next task starts, and a crash between records loses at most one
    chunk of work.
    """

    def __init__(self, store, chunk=8, on_record=None):
        self.store = store
        self.chunk = max(1, chunk)
        self.on_record = on_record

    def recorded(self, key):
        """The payload recorded under *key*, or None."""
        return self.store.get(key)

    def record(self, key, payload):
        self.store[key] = payload
        if self.on_record is not None:
            self.on_record(len(self.store))
        return payload

    def next_key(self):
        """A fresh record key (monotonic across resume: keys are counted,
        never reused)."""
        return f"chunk-{len(self.store):05d}"

    def payloads(self):
        """All recorded payloads, in record-key order."""
        return [self.store[key] for key in sorted(self.store)]


def chunked(items, size):
    """Contiguous chunks of at most *size* items, preserving order."""
    items = list(items)
    size = max(1, size)
    return [items[i : i + size] for i in range(0, len(items), size)]
