"""Generic two-section, table-driven assembler.

Parses target assembly text into an :class:`ObjectFile`.  Anything the
instruction table does not sanction -- unknown mnemonics, malformed
operands, unknown registers, out-of-range immediates, wrong operand
counts -- raises :class:`~repro.errors.AssemblerError`, which is exactly
the behaviour the paper's syntax-probing techniques rely on ("assemblers
which simply crash on the first error are quite acceptable").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.machines.operands import Imm, Mem, Reg, Sym, coerce_to_signature

_LABEL_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*(.*)$")

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"'}


@dataclass
class TextInstr:
    """One assembled instruction (pre-link: operands may contain Syms)."""

    mnemonic: str
    form: object
    operands: list
    lineno: int
    text: str


@dataclass
class DataEntry:
    """One datum in the data section."""

    labels: list
    kind: str  # "long" | "byte" | "asciz" | "space" | "align"
    value: object
    export: bool = False


@dataclass
class ObjectFile:
    """Result of assembling one compilation unit."""

    isa_name: str
    instrs: list = field(default_factory=list)
    text_labels: dict = field(default_factory=dict)
    data: list = field(default_factory=list)
    exports: set = field(default_factory=set)

    def local_label_names(self):
        names = set(self.text_labels)
        for entry in self.data:
            names.update(entry.labels)
        return names


def _unescape(body, lineno):
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body) or body[i] not in _ESCAPES:
                raise AssemblerError("bad string escape", lineno)
            out.append(_ESCAPES[body[i]])
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def split_operands(text):
    """Split an operand list on top-level commas (commas inside parens or
    brackets belong to a single operand)."""
    parts = []
    depth = 0
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail or parts:
        parts.append(tail)
    return parts


class Assembler:
    """Assembles text for one :class:`~repro.machines.isa.Isa`."""

    def __init__(self, isa):
        self.isa = isa

    def assemble(self, source):
        obj = ObjectFile(isa_name=self.isa.name)
        section = "text"
        pending_labels = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw).strip()
            if not line:
                continue
            # Peel off any leading labels (there may be several).
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                pending_labels.append(match.group(1))
                line = match.group(2).strip()
            if not line:
                continue
            if line.startswith("."):
                section, consumed = self._directive(obj, section, line, pending_labels, lineno)
                if consumed:
                    pending_labels = []
                continue
            if section != "text":
                raise AssemblerError("instruction outside .text section", lineno)
            for label in pending_labels:
                self._def_text_label(obj, label, lineno)
            pending_labels = []
            obj.instrs.append(self._instruction(line, lineno))
        # Labels trailing the last instruction point one past the end.
        if section == "text":
            for label in pending_labels:
                self._def_text_label(obj, label, None)
        return obj

    # -- helpers -------------------------------------------------------

    def _strip_comment(self, line):
        cut = line.find(self.isa.syntax.comment_char)
        if cut >= 0:
            return line[:cut]
        return line

    def _def_text_label(self, obj, label, lineno):
        if label in obj.text_labels:
            raise AssemblerError(f"duplicate label {label!r}", lineno)
        obj.text_labels[label] = len(obj.instrs)

    def _directive(self, obj, section, line, pending_labels, lineno):
        """Handle one directive; returns ``(new_section, labels_consumed)``."""
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            return "text", False
        if name == ".data":
            return "data", False
        if name == ".globl" or name == ".global":
            for sym in split_operands(rest):
                obj.exports.add(sym)
            return section, False
        if name == ".align":
            if section == "data":
                obj.data.append(DataEntry(list(pending_labels), "align", self._int(rest, lineno)))
                return section, True
            return section, False  # alignment of code is a no-op for us
        if name in (".long", ".word", ".quad"):
            if section != "data":
                raise AssemblerError(f"{name} outside .data", lineno)
            size = 8 if name == ".quad" else 4
            values = [self._int_or_sym(v, lineno) for v in split_operands(rest)]
            obj.data.append(DataEntry(list(pending_labels), "long", (size, values)))
            return section, True
        if name == ".byte":
            if section != "data":
                raise AssemblerError(".byte outside .data", lineno)
            values = [self._int(v, lineno) for v in split_operands(rest)]
            obj.data.append(DataEntry(list(pending_labels), "byte", values))
            return section, True
        if name == ".asciz" or name == ".ascii":
            if section != "data":
                raise AssemblerError(f"{name} outside .data", lineno)
            body = rest.strip()
            if len(body) < 2 or body[0] != '"' or body[-1] != '"':
                raise AssemblerError("malformed string literal", lineno)
            text = _unescape(body[1:-1], lineno)
            if name == ".asciz":
                text += "\0"
            obj.data.append(DataEntry(list(pending_labels), "asciz", text))
            return section, True
        if name in (".skip", ".space"):
            if section != "data":
                raise AssemblerError(f"{name} outside .data", lineno)
            obj.data.append(DataEntry(list(pending_labels), "space", self._int(rest, lineno)))
            return section, True
        if name == ".comm":
            args = split_operands(rest)
            if len(args) != 2:
                raise AssemblerError(".comm needs name,size", lineno)
            obj.data.append(
                DataEntry([args[0]], "space", self._int(args[1], lineno), export=True)
            )
            obj.exports.add(args[0])
            return section, False
        raise AssemblerError(f"unknown directive {name!r}", lineno)

    def _int(self, text, lineno):
        value = self.isa.syntax.parse_int(text)
        if value is None:
            raise AssemblerError(f"bad integer literal {text!r}", lineno)
        return value

    def _int_or_sym(self, text, lineno):
        value = self.isa.syntax.parse_int(text)
        if value is not None:
            return value
        text = text.strip()
        if re.fullmatch(r"[A-Za-z_.$][A-Za-z0-9_.$]*", text):
            return Sym(text)
        raise AssemblerError(f"bad data value {text!r}", lineno)

    def _instruction(self, line, lineno):
        parts = line.split(None, 1)
        mnemonic = parts[0]
        instr_def = self.isa.instructions.get(mnemonic)
        if instr_def is None:
            raise AssemblerError(f"unknown instruction {mnemonic!r}", lineno)
        operand_text = parts[1].strip() if len(parts) > 1 else ""
        texts = split_operands(operand_text) if operand_text else []
        try:
            operands = [self.isa.syntax.parse_operand(t) for t in texts]
        except ValueError as exc:
            raise AssemblerError(f"malformed operand: {exc}", lineno) from None
        self._validate_registers(operands, lineno)
        last_error = None
        for form in instr_def.forms:
            coerced = coerce_to_signature(operands, form.signature)
            if coerced is None:
                last_error = "operands do not match any form"
                continue
            range_error = self._check_ranges(form, coerced)
            if range_error:
                last_error = range_error
                continue
            constraint_error = self._check_reg_constraints(form, coerced)
            if constraint_error:
                last_error = constraint_error
                continue
            return TextInstr(mnemonic, form, coerced, lineno, line)
        raise AssemblerError(f"{mnemonic}: {last_error or 'no matching form'}", lineno)

    def _validate_registers(self, operands, lineno):
        for op in operands:
            names = []
            if isinstance(op, Reg):
                names.append(op.name)
            elif isinstance(op, Mem) and op.base is not None:
                names.append(op.base)
            for name in names:
                if self.isa.lookup_reg(name) is None:
                    raise AssemblerError(f"unknown register {name!r}", lineno)

    def _check_ranges(self, form, operands):
        for index, (lo, hi) in form.imm_ranges.items():
            op = operands[index]
            value = None
            if isinstance(op, Imm) and isinstance(op.value, int):
                value = op.value
            elif isinstance(op, Mem) and isinstance(op.disp, int):
                value = op.disp
            if value is not None and not lo <= value <= hi:
                return f"immediate {value} out of range [{lo},{hi}]"
        return None

    def _check_reg_constraints(self, form, operands):
        for index, allowed in form.reg_constraints.items():
            op = operands[index]
            if isinstance(op, Reg):
                canon = self.isa.canonical_reg(op.name)
                allowed_canon = {self.isa.canonical_reg(a) for a in allowed}
                if canon not in allowed_canon:
                    return f"register {op.name} not allowed in position {index}"
        return None
