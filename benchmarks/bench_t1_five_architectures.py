"""T1: full architecture discovery on all five targets (the paper's
section 7.2 claim: the system discovers the integer instruction sets of
the SPARC, Alpha, MIPS, VAX and x86 and emits (almost) correct machine
descriptions).

The benchmark value is the wall-clock cost of one complete discovery;
``extra_info`` carries the headline counts that EXPERIMENTS.md tabulates.
"""

from benchmarks.conftest import TARGETS, full_report

from repro.machines.machine import RemoteMachine
from repro.discovery.driver import ArchitectureDiscovery


def _discover(target):
    return ArchitectureDiscovery(RemoteMachine(target)).run()


def bench_factory(target):
    def bench(benchmark):
        report = benchmark.pedantic(
            _discover, args=(target,), rounds=1, iterations=1, warmup_rounds=0
        )
        summary = report.summary()
        benchmark.extra_info.update(summary)
        assert summary["instructions_discovered"] >= 20
        assert len(summary["branch_rules"]) == 6

    bench.__name__ = f"test_full_discovery_{target}"
    return bench


for _target in TARGETS:
    globals()[f"test_full_discovery_{_target}"] = bench_factory(_target)


def test_discovery_report_table(benchmark):
    """Render the cross-architecture summary table (EXPERIMENTS.md T1)."""

    def render():
        rows = []
        for target in TARGETS:
            summary = full_report(target).summary()
            rows.append(
                f"{target:6s} {summary['word']:22s} "
                f"instrs={summary['instructions_discovered']:3d} "
                f"samples={summary['samples']:16s} "
                f"execs={summary['target_executions']}"
            )
        return "\n".join(rows)

    table = benchmark(render)
    benchmark.extra_info["table"] = table
    assert table.count("\n") == len(TARGETS) - 1
