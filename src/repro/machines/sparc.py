"""Simulated Sun SPARC integer subset (big-endian, 32-bit).

Keeps the features the paper's analyses interact with: a hardwired
``%g0``, procedure actuals passed in ``%o0..%o5`` (implicit call
arguments, Figure 4a), a one-instruction delay slot after ``call``
(Figure 4c), 13-bit signed immediates ``[-4096, 4095]`` (the paper's
immediate-range discovery result), ``cmp`` + conditional branch pairs
(Figure 15d), and software multiplication via ``call .mul`` with implicit
``%o0``/``%o1`` inputs and ``%o0`` output (Figure 15e).

Simplification vs. real hardware: no register windows -- ``%sp``/``%fp``
form conventional flat frames -- and only ``call`` is delayed, not the
conditional branches.  Neither simplification touches the analyses above.
"""

from __future__ import annotations

import re

from repro import wordops
from repro.machines.executor import effaddr, read, write
from repro.machines.isa import Abi, InstrDef, InstrForm, Isa, RegisterDef, SyntaxDef
from repro.machines.operands import Bare, Imm, Mem, Reg

WORD = 32
IMM13 = (-4096, 4095)

_REG_RE = re.compile(r"^%(g[0-7]|o[0-7]|l[0-7]|i[0-7]|sp|fp)$")
_MEM_RE = re.compile(r"^\[\s*(%\w+)\s*(?:\+\s*(-?\w+)|-\s*(\w+))?\s*\]$")
_ID_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


class SparcSyntax(SyntaxDef):
    comment_char = "!"
    literal_bases = {"": 10, "0x": 16}

    def parse_operand(self, text):
        text = text.strip()
        if not text:
            raise ValueError("empty operand")
        if text.startswith("%"):
            if not _REG_RE.match(text):
                raise ValueError(f"malformed register {text!r}")
            return Reg(text)
        match = _MEM_RE.match(text)
        if match:
            base = match.group(1)
            if match.group(2) is not None:
                disp = self.parse_int(match.group(2))
            elif match.group(3) is not None:
                disp = self.parse_int(match.group(3))
                disp = -disp if disp is not None else None
            else:
                disp = 0
            if disp is None:
                raise ValueError(f"malformed displacement in {text!r}")
            return Mem(disp, base)
        value = self.parse_int(text)
        if value is not None:
            return Imm(value)
        if _ID_RE.match(text):
            return Bare(text)
        raise ValueError(f"malformed operand {text!r}")

    def render_operand(self, op):
        if isinstance(op, Reg):
            return op.name
        if isinstance(op, Imm):
            return str(op.value)
        if isinstance(op, Mem):
            disp = op.disp if isinstance(op.disp, int) else op.disp.name
            if disp == 0:
                return f"[{op.base}]"
            return f"[{op.base}+{disp}]"
        return str(getattr(op, "target", getattr(op, "name", op)))


def _ld(state, ops):
    write(state, ops[1], state.mem.load(effaddr(state, ops[0]), 4))


def _ldub(state, ops):
    write(state, ops[1], state.mem.load(effaddr(state, ops[0]), 1))


def _st(state, ops):
    state.mem.store(effaddr(state, ops[1]), read(state, ops[0]), 4)


def _set(state, ops):
    write(state, ops[1], read(state, ops[0]))


def _mov(state, ops):
    write(state, ops[1], read(state, ops[0]))


def _binop(fn):
    def execute(state, ops):
        a = read(state, ops[0])
        b = read(state, ops[1])
        write(state, ops[2], fn(a, b, WORD))

    return execute


def _unop(fn):
    def execute(state, ops):
        write(state, ops[1], fn(read(state, ops[0]), WORD))

    return execute


def _cmp(state, ops):
    state.compare_signed(read(state, ops[0]), read(state, ops[1]))


def _branch(cond):
    def execute(state, ops):
        if cond(state.cc):
            state.branch(read(state, ops[0]))

    return execute


def _ba(state, ops):
    state.branch(read(state, ops[0]))


def _call(state, ops):
    # %o7 holds the return point: past the delay slot.  state.pc already
    # indexes the delay-slot instruction here.
    state.set_reg("%o7", state.pc + 1)
    state.branch(read(state, ops[0]), delay=1)


def _retl(state, ops):
    state.branch(wordops.to_signed(state.get_reg("%o7"), WORD))


def _jmpl_o7(state, ops):
    state.branch(wordops.to_signed(read(state, ops[0]), WORD))


def _nop(state, ops):
    pass


class SparcAbi(Abi):
    stack_pointer = "%sp"

    def get_arg(self, state, index):
        if index < 6:
            return state.get_reg(f"%o{index}")
        sp = state.get_reg("%sp")
        return state.mem.load(sp + 4 * (index - 6), 4)

    def set_retval(self, state, value):
        state.set_reg("%o0", value)

    def do_return(self, state):
        state.branch(wordops.to_signed(state.get_reg("%o7"), WORD))

    def setup_entry(self, state, entry_index, halt_index):
        state.set_reg("%o7", halt_index)
        state.pc = entry_index


def build_isa():
    registers = [RegisterDef("%g0", hardwired=0, allocatable=False)]
    registers += [RegisterDef(f"%g{n}") for n in range(1, 6)]
    registers += [RegisterDef(f"%g{n}", allocatable=False) for n in (6, 7)]
    registers += [RegisterDef(f"%o{n}", allocatable=False) for n in range(0, 6)]
    registers.append(RegisterDef("%o6", aliases=("%sp",), allocatable=False))
    registers.append(RegisterDef("%o7", allocatable=False))
    registers += [RegisterDef(f"%l{n}") for n in range(0, 8)]
    registers += [RegisterDef(f"%i{n}", allocatable=False) for n in range(0, 6)]
    registers.append(RegisterDef("%i6", aliases=("%fp",), allocatable=False))
    registers.append(RegisterDef("%i7", allocatable=False))

    instructions = {}

    def define(mnemonic, *forms):
        instructions[mnemonic] = InstrDef(mnemonic, list(forms))

    define("ld", InstrForm(("m", "r"), _ld))
    define("ldub", InstrForm(("m", "r"), _ldub))
    define("st", InstrForm(("r", "m"), _st))
    define("set", InstrForm(("il", "r"), _set))
    define("mov", InstrForm(("ri", "r"), _mov, imm_ranges={0: IMM13}))
    for mnemonic, fn in [
        ("add", wordops.add),
        ("sub", wordops.sub),
        ("and", wordops.band),
        ("or", wordops.bor),
        ("xor", wordops.bxor),
        ("andn", lambda a, b, w: wordops.band(a, wordops.bit_not(b, w), w)),
    ]:
        define(
            mnemonic,
            InstrForm(("r", "ri", "r"), _binop(fn), imm_ranges={1: IMM13}),
        )
    for mnemonic, fn in [
        ("sll", wordops.shl),
        ("srl", wordops.shr_logical),
        ("sra", wordops.shr_arith),
    ]:
        define(
            mnemonic,
            InstrForm(("r", "ri", "r"), _binop(fn), imm_ranges={1: (0, 31)}),
        )
    define("neg", InstrForm(("r", "r"), _unop(wordops.neg)))
    define("not", InstrForm(("r", "r"), _unop(wordops.bit_not)))
    define("cmp", InstrForm(("r", "ri"), _cmp, imm_ranges={1: IMM13}))
    define("be", InstrForm(("l",), _branch(lambda cc: cc["eq"])))
    define("bne", InstrForm(("l",), _branch(lambda cc: not cc["eq"])))
    define("bl", InstrForm(("l",), _branch(lambda cc: cc["lt"])))
    define("ble", InstrForm(("l",), _branch(lambda cc: cc["lt"] or cc["eq"])))
    define("bg", InstrForm(("l",), _branch(lambda cc: cc["gt"])))
    define("bge", InstrForm(("l",), _branch(lambda cc: cc["gt"] or cc["eq"])))
    define("ba", InstrForm(("l",), _ba))
    define("call", InstrForm(("l",), _call), InstrForm(("l", "i"), _call))
    define("retl", InstrForm((), _retl))
    define("jmp", InstrForm(("r",), _jmpl_o7))
    define("nop", InstrForm((), _nop))

    return Isa(
        name="sparc",
        word_bits=WORD,
        endian="big",
        registers=registers,
        instructions=instructions,
        syntax=SparcSyntax(),
        abi=SparcAbi(),
        int_size=4,
        pointer_size=4,
        call_mnemonics=("call",),
        call_delay_slots=1,
    )
