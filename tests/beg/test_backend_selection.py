"""Instruction-selection behaviour of the generated back ends."""

import pytest

from repro.beg import ir
from repro.beg.codegen import GeneratedBackend
from tests.discovery.conftest import discovery_report


def asm_for(target, expr):
    report = discovery_report(target)
    backend = GeneratedBackend(report.spec)
    program = ir.IRProgram(
        stmts=[ir.Assign(ir.Local(0), expr), ir.Print(ir.Local(0)), ir.Exit()]
    )
    program.locals_used = 1
    return backend.compile_ir(program), report


class TestImmediateRuleSelection:
    def test_in_range_immediate_uses_the_imm_rule(self):
        asm, report = asm_for("sparc", ir.BinOp("Plus", ir.Local(0), ir.Const(7)))
        # The constant appears inline in an add, not via a loadimm.
        assert "add" in asm
        lines = [l for l in asm.splitlines() if l.strip().startswith("add")]
        assert any(", 7," in l for l in lines)

    def test_out_of_range_immediate_falls_back_to_registers(self):
        asm, report = asm_for("sparc", ir.BinOp("Plus", ir.Local(0), ir.Const(90000)))
        result = report.corpus.machine.run_asm([asm])
        assert result.ok
        # 90000 exceeds [-4096,4095]: it must arrive via set, not inline.
        assert any(
            l.strip().startswith("set 90000") for l in asm.splitlines()
        )

    def test_m68k_large_shift_uses_the_register_form(self):
        asm, report = asm_for("m68k", ir.BinOp("Shl", ir.Local(0), ir.Const(13)))
        result = report.corpus.machine.run_asm([asm])
        assert result.ok
        # 13 exceeds the [1,8] immediate range; the count is loaded.
        assert "#13" in asm

    def test_in_range_m68k_shift_is_inline(self):
        asm, _report = asm_for("m68k", ir.BinOp("Shl", ir.Local(0), ir.Const(5)))
        assert any(
            l.strip().startswith("lsl.l #5") for l in asm.splitlines()
        )


class TestClassAwareAllocation:
    def test_m68k_mult_lands_in_data_registers(self):
        asm, report = asm_for(
            "m68k", ir.BinOp("Mult", ir.Local(0), ir.Const(3))
        )
        result = report.corpus.machine.run_asm([asm])
        assert result.ok
        for line in asm.splitlines():
            stripped = line.strip()
            if stripped.startswith("muls.l"):
                destination = stripped.split(",")[-1].strip()
                assert destination.startswith("d"), line

    def test_x86_division_results_route_through_the_literal_registers(self):
        asm, report = asm_for("x86", ir.BinOp("Mod", ir.Local(0), ir.Const(9)))
        assert "cltd" in asm and "idivl" in asm
        result = report.corpus.machine.run_asm([asm])
        assert result.ok


class TestEmittedShape:
    @pytest.mark.parametrize("target", ("mips", "vax"))
    def test_every_line_assembles(self, target):
        asm, report = asm_for(
            target,
            ir.BinOp(
                "Plus",
                ir.BinOp("Mult", ir.Local(0), ir.Const(3)),
                ir.UnOp("Neg", ir.Local(0)),
            ),
        )
        assert report.corpus.machine.assembles_ok(asm)

    def test_labels_are_namespaced(self):
        report = discovery_report("mips")
        backend = GeneratedBackend(report.spec)
        program = ir.IRProgram(
            stmts=[
                ir.Label("Lstr0"),  # deliberately collides with data labels
                ir.Jump("Lstr0"),
                ir.Exit(),
            ]
        )
        program.locals_used = 0
        asm = backend.compile_ir(program)
        assert "T0_Lstr0:" in asm
