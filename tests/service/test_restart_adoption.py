"""Service-restart adoption: SIGKILL the whole service (and its
worker) mid-campaign, restart it on the same root, and require the
adopted campaign to finish with a spec bit-for-bit identical to direct
discovery.

This is the crash story the service promises: no state the disk does
not hold.  The job record, the worker's checkpoints and the progress
sidecar all survive the kill; a fresh ``repro serve`` lists the open
job, re-arms its supervisor, reaps the orphaned worker and resumes.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

from repro.discovery.durable import PROGRESS_FILE
from repro.discovery.supervisor import read_lease
from repro.service import jobs as jobstates
from repro.service.client import ServiceClient

from .conftest import REPO_ROOT, TARGETS

_URL_LINE = re.compile(r"listening on (http://\S+)")


def _spawn_serve(root, cache_dir, log_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    log = open(log_path, "ab")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--root",
            str(root),
            "--port",
            "0",
            "--fleet",
            "1",
            "--cache-dir",
            str(cache_dir),
            "--heartbeat-every",
            "0.2",
            "--lease-timeout",
            "30",
            "--poll-interval",
            "0.05",
        ],
        env=env,
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    log.close()
    return process


def _wait_for_url(log_path, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"serve exited early:\n{log_path.read_text()}"
            )
        match = _URL_LINE.search(log_path.read_text())
        if match:
            return match.group(1)
        time.sleep(0.1)
    raise AssertionError(f"no listening line in:\n{log_path.read_text()}")


def _kill(pid):
    try:
        os.kill(pid, signal.SIGKILL)
    except (OSError, ProcessLookupError):
        pass


def test_service_sigkill_midcampaign_adopts_to_identical_spec(
    tmp_path, ref_specs
):
    root = tmp_path / "root"
    cache = tmp_path / "cache"  # cold: keeps the kill window wide open
    first_log = tmp_path / "serve-1.log"
    second_log = tmp_path / "serve-2.log"

    first = _spawn_serve(root, cache, first_log)
    second = None
    try:
        url = _wait_for_url(first_log, first)
        client = ServiceClient(url)
        # two targets, fleet of one: vax is mid-phase when the service
        # dies, mips has not started -- the restart must adopt the
        # half-done campaign AND pick up the never-launched one
        job = client.submit(TARGETS)
        run_dir = root / "campaigns" / job["id"] / TARGETS[0] / "run"

        # wait until the worker has durably committed some phases but
        # cannot have finished, then kill service and worker outright
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            try:
                progress = json.loads((run_dir / PROGRESS_FILE).read_text())
            except (OSError, ValueError):
                progress = {}
            if 2 <= len(progress.get("completed", [])) <= 10:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("campaign never reached the kill window")

        lease = read_lease(run_dir)
        _kill(first.pid)
        first.wait(timeout=10)
        if lease and lease.get("pid"):
            _kill(lease["pid"])
        killed_at = progress["completed"]
        assert len(killed_at) < 14, "campaign finished before the kill"

        second = _spawn_serve(root, cache, second_log)
        url = _wait_for_url(second_log, second)
        adopted_client = ServiceClient(url)
        final = adopted_client.wait(job["id"], timeout=480)
        assert final["state"] == jobstates.DONE, final
        assert "adopted 1 open job(s)" in second_log.read_text()

        specs = adopted_client.spec(job["id"])["specs"]
        for target in TARGETS:
            assert specs[target] == ref_specs[target], target
            # and the on-disk artifact agrees with what HTTP served
            artifact = (
                root / "campaigns" / job["id"] / target / "out" / f"{target}.beg"
            )
            assert artifact.read_text() == ref_specs[target], target
    finally:
        _kill(first.pid)
        if second is not None:
            _kill(second.pid)
            second.wait(timeout=10)
