"""Executor behaviour: control flow, calls, builtins, failure modes."""

import pytest

from repro.machines.machine import RemoteMachine


@pytest.fixture(scope="module")
def x86():
    return RemoteMachine("x86")


@pytest.fixture(scope="module")
def sparc():
    return RemoteMachine("sparc")


def run(machine, body, data=""):
    text = ""
    if data:
        text += ".data\n" + data + "\n"
    text += ".text\n.globl main\nmain:\n" + body + "\n"
    return machine.run_asm([text])


def test_return_from_main_halts_cleanly(x86):
    result = run(x86, "movl $1, %eax\nret")
    assert result.ok


def test_fall_off_end_reported(x86):
    result = run(x86, "movl $1, %eax")
    assert not result.ok
    assert "fell off" in result.error


def test_exit_code(x86):
    result = run(x86, "pushl $3\ncall exit")
    assert result.ok
    assert result.exit_code == 3


def test_division_by_zero_is_an_error(x86):
    result = run(x86, "movl $0, %ebx\nmovl $1, %eax\ncltd\nidivl %ebx")
    assert not result.ok
    assert "zero" in result.error


def test_infinite_loop_runs_out_of_fuel():
    machine = RemoteMachine("x86", fuel=1000)
    result = run(machine, "spin: jmp spin")
    assert not result.ok
    assert "fuel" in result.error


def test_undefined_main_is_an_error(x86):
    result = x86.run_asm([".text\nnotmain: nop\n"])
    assert not result.ok


def test_hardwired_register_reads_zero(sparc):
    result = run(
        sparc,
        "set 5, %g1\nadd %g0, %g0, %g1\nmov %g1, %o1\n"
        "set fmt, %o0\ncall printf, 2\nnop\ncall exit, 1\nmov 0, %o0",
        data='fmt: .asciz "%i\\n"',
    )
    assert result.output == "0\n"


def test_hardwired_register_ignores_writes(sparc):
    result = run(
        sparc,
        "set 5, %g0\nmov %g0, %o1\n"
        "set fmt, %o0\ncall printf, 2\nnop\ncall exit, 1\nmov 0, %o0",
        data='fmt: .asciz "%i\\n"',
    )
    assert result.output == "0\n"


def test_sparc_call_delay_slot_executes_before_transfer(sparc):
    # The mov in the delay slot must set up %o1 before printf runs.
    result = run(
        sparc,
        "set fmt, %o0\ncall printf, 2\nmov 42, %o1\ncall exit, 1\nmov 0, %o0",
        data='fmt: .asciz "%i\\n"',
    )
    assert result.output == "42\n"


def test_printf_conversions(x86):
    result = run(
        x86,
        "pushl $-7\npushl $65\npushl $-7\npushl $fmt\ncall printf\n"
        "addl $16, %esp\npushl $0\ncall exit",
        data='fmt: .asciz "%i %c %u"',
    )
    assert result.ok
    assert result.output == "-7 A 4294967289"


def test_printf_string_conversion(x86):
    result = run(
        x86,
        "pushl $msg\npushl $fmt\ncall printf\naddl $8, %esp\npushl $0\ncall exit",
        data='fmt: .asciz "[%s]"\nmsg: .asciz "ok"',
    )
    assert result.output == "[ok]"


def test_execution_never_raises_on_bad_jump(x86):
    result = run(x86, "movl $99999, %eax\npushl %eax\nret")
    assert not result.ok


def test_stats_count_executions(x86):
    before = x86.stats.executions
    run(x86, "pushl $0\ncall exit")
    assert x86.stats.executions == before + 1
