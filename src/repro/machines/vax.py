"""Simulated DEC VAX integer subset (little-endian, 32-bit CISC).

The VAX contributes the paper's CISC shapes: memory-to-memory
three-operand arithmetic (``addl3 -12(fp),-8(fp),-4(fp)``, Figure 3),
use-def two-operand forms (``addl2``), ``tstl``+``jeql`` branching, and
the arithmetic-shift instruction ``ashl`` whose direction depends on its
count's sign -- which the paper's reverse interpreter (and ours) cannot
express with its conditional-free primitives (section 5.2.3).

Simplification vs. real hardware: ``calls`` pushes ``(count, return, ap,
fp)`` without the register save mask, and operand addressing is limited
to register / literal / displacement modes.
"""

from __future__ import annotations

import re

from repro import wordops
from repro.errors import ExecutionError
from repro.machines.executor import effaddr, read, write
from repro.machines.isa import Abi, InstrDef, InstrForm, Isa, RegisterDef, SyntaxDef
from repro.machines.operands import Bare, Imm, Mem, Reg, Sym

WORD = 32

_MEM_RE = re.compile(r"^(-?\w*)\((\w+)\)$")
_ID_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")

REGISTER_NAMES = tuple(f"r{n}" for n in range(12)) + ("ap", "fp", "sp")


class VaxSyntax(SyntaxDef):
    comment_char = "#"
    literal_bases = {"": 10, "0x": 16}
    hex_upper_ok = False

    def parse_operand(self, text):
        text = text.strip()
        if not text:
            raise ValueError("empty operand")
        if text in REGISTER_NAMES:
            return Reg(text)
        if text.startswith("$"):
            body = text[1:]
            value = self.parse_int(body)
            if value is not None:
                return Imm(value)
            if _ID_RE.match(body):
                return Imm(Sym(body))
            raise ValueError(f"malformed immediate {text!r}")
        match = _MEM_RE.match(text)
        if match:
            disp_text, base = match.group(1), match.group(2)
            if base not in REGISTER_NAMES:
                raise ValueError(f"unknown base register {base!r}")
            disp = 0 if disp_text == "" else self.parse_int(disp_text)
            if disp is None:
                raise ValueError(f"malformed displacement in {text!r}")
            return Mem(disp, base)
        value = self.parse_int(text)
        if value is not None:
            return Mem(value, None)  # absolute memory reference
        if _ID_RE.match(text):
            return Bare(text)
        raise ValueError(f"malformed operand {text!r}")

    def render_operand(self, op):
        if isinstance(op, Reg):
            return op.name
        if isinstance(op, Imm):
            return f"${op.value}" if isinstance(op.value, int) else f"${op.value.name}"
        if isinstance(op, Mem):
            disp = op.disp if isinstance(op.disp, int) else op.disp.name
            if op.base is None:
                return str(disp)
            return f"{disp}({op.base})"
        return str(getattr(op, "target", getattr(op, "name", op)))


def _movl(state, ops):
    write(state, ops[1], read(state, ops[0]))


def _movzbl(state, ops):
    value = state.mem.load(effaddr(state, ops[0]), 1)
    write(state, ops[1], value)


def _clrl(state, ops):
    write(state, ops[0], 0)


def _moval(state, ops):
    write(state, ops[1], effaddr(state, ops[0]))


def _pushl(state, ops):
    sp = state.get_reg("sp") - 4
    state.set_reg("sp", sp)
    state.mem.store(sp, read(state, ops[0]), 4)


def _tstl(state, ops):
    state.compare_signed(read(state, ops[0]), 0)


def _cmpl(state, ops):
    # VAX: cmpl src1, src2 sets condition codes from src1 - src2.
    state.compare_signed(read(state, ops[0]), read(state, ops[1]))


def _op2(fn, swap=False, check_zero=False):
    """Two-operand use-def form: dst = dst OP src (or src OP dst)."""

    def execute(state, ops):
        src = read(state, ops[0])
        dst = read(state, ops[1])
        a, b = (src, dst) if swap else (dst, src)
        if check_zero and wordops.mask(b, WORD) == 0:
            raise ExecutionError("division by zero")
        write(state, ops[1], fn(a, b, WORD))

    return execute


def _op3(fn, swap=False, check_zero=False):
    """Three-operand form; VAX subtract/divide reverse the operand roles:
    ``subl3 sub, min, dif`` computes ``dif = min - sub``."""

    def execute(state, ops):
        first = read(state, ops[0])
        second = read(state, ops[1])
        a, b = (second, first) if swap else (first, second)
        if check_zero and wordops.mask(b, WORD) == 0:
            raise ExecutionError("division by zero")
        write(state, ops[2], fn(a, b, WORD))

    return execute


def _mnegl(state, ops):
    write(state, ops[1], wordops.neg(read(state, ops[0]), WORD))


def _mcoml(state, ops):
    write(state, ops[1], wordops.bit_not(read(state, ops[0]), WORD))


def _ashl(state, ops):
    count = wordops.to_signed(read(state, ops[0]), WORD)
    src = read(state, ops[1])
    if count >= 0:
        result = wordops.shl(src, count % 32, WORD)
    else:
        result = wordops.shr_arith(src, (-count) % 32, WORD)
    write(state, ops[2], result)


def _branch(cond):
    def execute(state, ops):
        if cond(state.cc):
            state.branch(read(state, ops[0]))

    return execute


def _jbr(state, ops):
    state.branch(read(state, ops[0]))


def _calls(state, ops):
    count = read(state, ops[0])
    target = read(state, ops[1])
    sp = state.get_reg("sp")
    for value in (count, state.pc, state.get_reg("ap"), state.get_reg("fp")):
        sp -= 4
        state.mem.store(sp, value, 4)
    state.set_reg("sp", sp)
    state.set_reg("fp", sp)
    state.set_reg("ap", sp + 12)
    state.branch(target)


def _ret(state, ops):
    sp = state.get_reg("fp")
    fp = state.mem.load(sp, 4)
    ap = state.mem.load(sp + 4, 4)
    retaddr = state.mem.load(sp + 8, 4)
    count = state.mem.load(sp + 12, 4)
    state.set_reg("fp", fp)
    state.set_reg("ap", ap)
    state.set_reg("sp", sp + 16 + 4 * count)
    state.branch(wordops.to_signed(retaddr, WORD))


def _nop(state, ops):
    pass


class VaxAbi(Abi):
    stack_pointer = "sp"

    def get_arg(self, state, index):
        ap = state.get_reg("ap")
        return state.mem.load(ap + 4 + 4 * index, 4)

    def set_retval(self, state, value):
        state.set_reg("r0", value)

    def do_return(self, state):
        _ret(state, [])

    def setup_entry(self, state, entry_index, halt_index):
        # Simulate `calls $0, main` with a return landing on halt.
        state.pc = halt_index
        _calls(state, [  # operands: count, target
            _const_operand(0),
            _const_operand(entry_index),
        ])


def _const_operand(value):
    return Imm(value)


RM = "rm"
SRC = "rim"


def build_isa():
    registers = [RegisterDef(f"r{n}", allocatable=(n <= 5)) for n in range(12)]
    registers += [
        RegisterDef("ap", allocatable=False),
        RegisterDef("fp", allocatable=False),
        RegisterDef("sp", allocatable=False),
    ]

    instructions = {}

    def define(mnemonic, *forms):
        instructions[mnemonic] = InstrDef(mnemonic, list(forms))

    define("movl", InstrForm((SRC, RM), _movl))
    define("movzbl", InstrForm(("m", RM), _movzbl))
    define("clrl", InstrForm((RM,), _clrl))
    define("moval", InstrForm(("m", RM), _moval))
    define("pushl", InstrForm((SRC,), _pushl))
    define("tstl", InstrForm((SRC,), _tstl))
    define("cmpl", InstrForm((SRC, SRC), _cmpl))
    # The 2-operand forms compute dst = dst OP src; the 3-operand
    # subtract/divide/bit-clear forms reverse operand roles (``subl3
    # sub, min, dif`` is ``dif = min - sub``), hence swap3.
    for base, fn, swap3, zero in [
        ("addl", wordops.add, False, False),
        ("subl", wordops.sub, True, False),
        ("mull", wordops.mul, False, False),
        ("divl", wordops.sdiv, True, True),
        ("bisl", wordops.bor, False, False),
        ("xorl", wordops.bxor, False, False),
        ("bicl", lambda a, b, w: wordops.band(a, wordops.bit_not(b, w), w), True, False),
    ]:
        define(base + "2", InstrForm((SRC, RM), _op2(fn, check_zero=zero)))
        define(base + "3", InstrForm((SRC, SRC, RM), _op3(fn, swap=swap3, check_zero=zero)))
    define("mnegl", InstrForm((SRC, RM), _mnegl))
    define("mcoml", InstrForm((SRC, RM), _mcoml))
    define("ashl", InstrForm((SRC, SRC, RM), _ashl))
    define("jeql", InstrForm(("l",), _branch(lambda cc: cc["eq"])))
    define("jneq", InstrForm(("l",), _branch(lambda cc: not cc["eq"])))
    define("jlss", InstrForm(("l",), _branch(lambda cc: cc["lt"])))
    define("jleq", InstrForm(("l",), _branch(lambda cc: cc["lt"] or cc["eq"])))
    define("jgtr", InstrForm(("l",), _branch(lambda cc: cc["gt"])))
    define("jgeq", InstrForm(("l",), _branch(lambda cc: cc["gt"] or cc["eq"])))
    define("jbr", InstrForm(("l",), _jbr))
    define("calls", InstrForm(("i", "l"), _calls))
    define("ret", InstrForm((), _ret))
    define("nop", InstrForm((), _nop))

    return Isa(
        name="vax",
        word_bits=WORD,
        endian="little",
        registers=registers,
        instructions=instructions,
        syntax=VaxSyntax(),
        abi=VaxAbi(),
        int_size=4,
        pointer_size=4,
        call_mnemonics=("calls",),
    )
