"""Portable checkpoint serialisation: a schema-stable structured codec.

PR 5's checkpoints were :mod:`pickle` behind a checksummed envelope --
durable against power cuts, but **bound to one build**: a checkpoint
written by one interpreter/source tree could only be adopted by the
identical one, because pickle records class import paths and whatever
``__reduce__`` happens to produce today.  A fleet supervisor needs the
opposite property: *any* worker on *any* build adopts a crashed
campaign and resumes it bit-for-bit.

This module is that stable serialisation.  ``freeze(obj)`` turns the
whole checkpoint object graph into a JSON-safe structure built from
five explicitly tagged forms (object, dict, list, set/frozenset,
tuple, plus leaf encodings for bytes and seeded RNG state); ``thaw``
rebuilds the graph.  Three properties pickle does not give us:

* **Closed world.**  Only classes in the :data:`REGISTRY` serialise.
  An unregistered class is a hard error at freeze time -- a checkpoint
  can never smuggle live state whose layout nobody promised to keep --
  and a hard error at thaw time, so a forged or future-build payload
  cannot instantiate arbitrary types the way ``pickle.loads`` can.
* **Reference fidelity.**  Shared mutable objects (the corpus the
  mutation engine points at, the syntax the spec embeds) are encoded
  once and referenced thereafter, so aliasing -- which the resumed
  driver relies on -- survives the round trip, as do cycles.
* **Deterministic bytes.**  Encoding order is traversal order, dict
  entries keep insertion order (pair lists, never JSON objects whose
  key order a serialiser may rewrite), set elements are sorted by
  their canonical encoding, and :func:`canonical_bytes` renders with
  sorted keys and fixed separators.  Two freezes of equal state are
  byte-identical, which is what lets the lease-hygiene tests hash
  checkpoint bodies and what makes commit checksums comparable across
  workers.

The codec deliberately carries **state, not behaviour**: thawing
allocates with ``cls.__new__`` and restores attribute dicts, so code
upgrades apply to adopted campaigns immediately -- the stability
contract is field names (checked by the registry), not bytecode.

Wall-clock measurements are excluded by codec policy (see the
``DiscoveryReport`` entry): a checkpoint must describe *what was
decided*, never *when*, so equal runs freeze to equal bytes.
"""

from __future__ import annotations

import base64
import json
import math
import random

from repro.errors import DiscoveryError

#: bump when the encoding scheme itself (the tag forms) changes;
#: class-level layout changes are carried by the checkpoint schema
PORTABLE_FORMAT = "portable/1"

#: the reserved tag key; a plain JSON object is never emitted, so the
#: decoder can treat every dict it sees as a tagged form
TAG = "!"


class PortableError(DiscoveryError):
    """The object graph contains something outside the portable
    closed world (freeze), or a payload names an unknown tag/class or
    is structurally malformed (thaw)."""


# -- the class registry -------------------------------------------------


class _Entry:
    """How one class freezes: which attributes to drop, and how to
    finish a thawed instance (rebuild the dropped runtime bits)."""

    def __init__(self, cls, exclude=(), restore=None):
        self.cls = cls
        self.exclude = frozenset(exclude)
        self.restore = restore


def _restore_corpus(corpus):
    # Live connections never ride a checkpoint: the resuming driver
    # rebinds its own machine stack, and assembled init objects belong
    # to the connection that made them.
    corpus.machine = None
    corpus._init_cache = {}


def _restore_probe_log(log):
    import threading

    log._lock = threading.Lock()


def _restore_report(report):
    # Timings are excluded by policy (wall clock is not state); the
    # resumed run measures its own phases from here on.
    report.timings = []


def _build_registry():
    """tag -> _Entry for every class allowed inside a checkpoint.

    Imports live here (not at module top) because the driver imports
    the durable layer which imports this module; the registry is only
    needed once a checkpoint is actually frozen or thawed.
    """
    from repro.analysis.diagnostics import Diagnostic, DiagnosticSet
    from repro.beg.spec import MachineSpec, OpRule
    from repro.discovery.addresses import AddressMap
    from repro.discovery.asmmodel import (
        DImm,
        DInstr,
        DMem,
        DReg,
        DSym,
        DUnknown,
        Slot,
    )
    from repro.discovery.branches import BranchModel, BranchRule
    from repro.discovery.calling import CallProtocol
    from repro.discovery.dfg import Dfg
    from repro.discovery.driver import DiscoveryReport, PhaseTiming
    from repro.discovery.enquire import EnquireResult
    from repro.discovery.extract_pool import ExtractionStats, ShardOutcome
    from repro.discovery.frames import FrameModel
    from repro.discovery.graphmatch import MatchResult
    from repro.discovery.mutation import MutationEngine, MutationStats, ValueSet
    from repro.discovery.preprocess import LiveRange, RegionInfo
    from repro.discovery.probe import ProbeLog
    from repro.discovery.reverse_interp import ExtractionResult, OpSemantics
    from repro.discovery.cache import CacheStats
    from repro.discovery.resilience import RetryStats
    from repro.discovery.samples import Corpus, Sample
    from repro.discovery.scheduler import SchedulerStats
    from repro.discovery.syntax import DiscoveredSyntax, LoadImmTemplate
    from repro.machines.restore import machine_stats_classes

    MachineStats, FaultStats = machine_stats_classes()

    entries = {
        "Report": _Entry(
            DiscoveryReport, exclude=("timings",), restore=_restore_report
        ),
        "PhaseTiming": _Entry(PhaseTiming),
        "Sample": _Entry(Sample),
        "Corpus": _Entry(
            Corpus, exclude=("machine", "_init_cache"), restore=_restore_corpus
        ),
        "Syntax": _Entry(DiscoveredSyntax),
        "LoadImm": _Entry(LoadImmTemplate),
        "DReg": _Entry(DReg),
        "DImm": _Entry(DImm),
        "DMem": _Entry(DMem),
        "DSym": _Entry(DSym),
        "DUnknown": _Entry(DUnknown),
        "Slot": _Entry(Slot),
        "DInstr": _Entry(DInstr),
        "Enquire": _Entry(EnquireResult),
        "ProbeLog": _Entry(
            ProbeLog, exclude=("_lock",), restore=_restore_probe_log
        ),
        "LiveRange": _Entry(LiveRange),
        "RegionInfo": _Entry(RegionInfo),
        "Dfg": _Entry(Dfg),
        "MutationEngine": _Entry(MutationEngine),
        "MutationStats": _Entry(MutationStats),
        "ValueSet": _Entry(ValueSet),
        "AddressMap": _Entry(AddressMap),
        "MatchResult": _Entry(MatchResult),
        "OpSemantics": _Entry(OpSemantics),
        "ExtractionResult": _Entry(ExtractionResult),
        "ExtractionStats": _Entry(ExtractionStats),
        "ShardOutcome": _Entry(ShardOutcome),
        "BranchRule": _Entry(BranchRule),
        "BranchModel": _Entry(BranchModel),
        "CallProtocol": _Entry(CallProtocol),
        "FrameModel": _Entry(FrameModel),
        "OpRule": _Entry(OpRule),
        "MachineSpec": _Entry(MachineSpec),
        "Diagnostic": _Entry(Diagnostic),
        "DiagnosticSet": _Entry(DiagnosticSet),
        "SchedulerStats": _Entry(SchedulerStats),
        # post-run summary stats (a checkpoint of a *finished* run
        # carries these; mid-run commits leave them None)
        "MachineStats": _Entry(MachineStats),
        "RetryStats": _Entry(RetryStats),
        "FaultStats": _Entry(FaultStats),
        "CacheStats": _Entry(CacheStats),
    }
    return entries


_REGISTRY = None
_BY_CLASS = None


def _registry():
    global _REGISTRY, _BY_CLASS
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
        _BY_CLASS = {entry.cls: (tag, entry) for tag, entry in _REGISTRY.items()}
    return _REGISTRY, _BY_CLASS


# -- freezing -----------------------------------------------------------


class _Freezer:
    def __init__(self):
        _, self.by_class = _registry()
        self.memo = {}  # id(obj) -> assigned reference id
        self.next_id = 0
        self.pins = []  # keep encoded objects alive so ids stay unique

    def _assign(self, obj):
        ref = self.next_id
        self.next_id += 1
        self.memo[id(obj)] = ref
        self.pins.append(obj)
        return ref

    def freeze(self, obj):
        if isinstance(obj, float) and not math.isfinite(obj):
            # Strict JSON has no NaN/Infinity literals; a tagged leaf
            # keeps canonical payloads parseable by any JSON reader
            # (the service API ships checkpoint-adjacent payloads to
            # foreign clients) while round-tripping the value exactly.
            return {TAG: "f", "v": repr(obj)}
        if obj is None or isinstance(obj, (bool, int, str, float)):
            return obj
        ref = self.memo.get(id(obj))
        if ref is not None:
            return {TAG: "r", "i": ref}
        if isinstance(obj, list):
            ref = self._assign(obj)
            return {TAG: "l", "i": ref, "e": [self.freeze(x) for x in obj]}
        if isinstance(obj, dict):
            ref = self._assign(obj)
            return {
                TAG: "d",
                "i": ref,
                "e": [[self.freeze(k), self.freeze(v)] for k, v in obj.items()],
            }
        if isinstance(obj, tuple):
            return {TAG: "t", "e": [self.freeze(x) for x in obj]}
        if isinstance(obj, (set, frozenset)):
            ref = self._assign(obj)
            frozen = [self.freeze(x) for x in obj]
            frozen.sort(key=lambda item: json.dumps(item, sort_keys=True))
            kind = "fs" if isinstance(obj, frozenset) else "s"
            return {TAG: kind, "i": ref, "e": frozen}
        if isinstance(obj, (bytes, bytearray)):
            return {TAG: "b", "b64": base64.b64encode(bytes(obj)).decode("ascii")}
        if isinstance(obj, random.Random):
            ref = self._assign(obj)
            return {TAG: "rng", "i": ref, "state": self.freeze(obj.getstate())}
        tagged = self.by_class.get(type(obj))
        if tagged is None:
            raise PortableError(
                f"{type(obj).__module__}.{type(obj).__qualname__} is not a "
                f"portable class; register it in repro.discovery.portable"
            )
        tag, entry = tagged
        ref = self._assign(obj)
        state = {
            name: value
            for name, value in vars(obj).items()
            if name not in entry.exclude
        }
        return {TAG: "o", "t": tag, "i": ref, "s": self.freeze(state)}


def freeze(obj):
    """Encode an object graph into the portable JSON-safe structure.

    Raises :class:`PortableError` (never a bare ``RecursionError``) on
    graphs nested beyond the interpreter's recursion limit: a payload
    the codec cannot commit to thawing is rejected with a typed error
    instead of a torn stack."""
    try:
        return _Freezer().freeze(obj)
    except RecursionError as exc:
        raise PortableError(
            "object graph is nested too deeply to encode portably"
        ) from exc


# -- thawing ------------------------------------------------------------


class _Thawer:
    def __init__(self):
        self.registry, _ = _registry()
        self.memo = {}  # reference id -> rebuilt object

    def thaw(self, data):
        if data is None or isinstance(data, (bool, int, str, float)):
            return data
        if isinstance(data, list):
            raise PortableError("bare list in payload (lists must be tagged)")
        if not isinstance(data, dict) or TAG not in data:
            raise PortableError(f"untagged node in payload: {data!r:.80}")
        tag = data[TAG]
        try:
            if tag == "r":
                return self.memo[data["i"]]
            if tag == "l":
                out = self.memo[data["i"]] = []
                out.extend(self.thaw(x) for x in data["e"])
                return out
            if tag == "d":
                out = self.memo[data["i"]] = {}
                for key, value in data["e"]:
                    out[self.thaw(key)] = self.thaw(value)
                return out
            if tag == "t":
                return tuple(self.thaw(x) for x in data["e"])
            if tag == "fs":
                out = self.memo[data["i"]] = frozenset(
                    self.thaw(x) for x in data["e"]
                )
                return out
            if tag == "s":
                out = self.memo[data["i"]] = set()
                out.update(self.thaw(x) for x in data["e"])
                return out
            if tag == "b":
                return base64.b64decode(data["b64"])
            if tag == "f":
                value = float(data["v"])
                if math.isfinite(value):
                    raise PortableError(
                        f"finite float {data['v']!r} under the non-finite tag"
                    )
                return value
            if tag == "rng":
                # seedless is sound here: setstate() on the next line
                # overwrites the OS-entropy state with the frozen one
                rng = self.memo[data["i"]] = random.Random()  # detlint: ok[DET001]
                rng.setstate(self.thaw(data["state"]))
                return rng
            if tag == "o":
                entry = self.registry.get(data["t"])
                if entry is None:
                    raise PortableError(f"unknown portable class tag {data['t']!r}")
                obj = self.memo[data["i"]] = entry.cls.__new__(entry.cls)
                obj.__dict__.update(self.thaw(data["s"]))
                if entry.restore is not None:
                    entry.restore(obj)
                return obj
        except PortableError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise PortableError(f"malformed {tag!r} node: {exc}") from exc
        raise PortableError(f"unknown portable tag {tag!r}")


def thaw(data):
    """Decode :func:`freeze` output back into the object graph.

    Malformed payloads -- including ones nested beyond the recursion
    limit -- raise :class:`PortableError`, never an untyped crash."""
    try:
        return _Thawer().thaw(data)
    except RecursionError as exc:
        raise PortableError(
            "payload is nested too deeply to decode portably"
        ) from exc


# -- canonical bytes ----------------------------------------------------


def canonical_bytes(data):
    """Render a frozen structure as deterministic UTF-8 JSON bytes.

    Key order inside tagged nodes is sorted and separators are fixed,
    so equal structures yield equal bytes on every build; dict entry
    order is data (the ``e`` pair list), not key order, so sorting is
    safe."""
    try:
        return json.dumps(
            data,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        ).encode("ascii")
    except ValueError as exc:
        # allow_nan=False rejects any non-finite float that slipped
        # through untagged -- a typed error beats emitting "NaN", which
        # strict JSON readers (and the service's clients) cannot parse.
        raise PortableError(f"payload is not strict JSON: {exc}") from exc


def from_canonical(blob):
    """Parse :func:`canonical_bytes` output (plain JSON)."""
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise PortableError(f"payload is not canonical JSON: {exc}") from exc
    except RecursionError as exc:
        raise PortableError(
            "payload is nested too deeply to parse"
        ) from exc


def dumps(obj):
    """Freeze and render in one step."""
    return canonical_bytes(freeze(obj))


def loads(blob):
    """Parse and thaw in one step."""
    return thaw(from_canonical(blob))
