"""Substrate throughput: the simulated toolchains themselves.

Not a paper experiment, but the denominators behind every other number:
how fast the simulated targets compile, assemble, link and execute.
"""

import pytest

from benchmarks.conftest import TARGETS

from repro.machines.machine import RemoteMachine

_SOURCE = (
    "int F(int n){ if (n < 2) return 1; return n * F(n - 1); }"
    ' main(){ printf("%i\\n", F(10)); exit(0); }'
)


@pytest.mark.parametrize("target", TARGETS)
def test_c_compile(benchmark, target):
    machine = RemoteMachine(target)
    asm = benchmark(machine.compile_c, _SOURCE)
    assert ".globl main" in asm


@pytest.mark.parametrize("target", TARGETS)
def test_assemble(benchmark, target):
    machine = RemoteMachine(target)
    asm = machine.compile_c(_SOURCE)
    handle = benchmark(machine.assemble, asm)
    assert handle is not None


@pytest.mark.parametrize("target", TARGETS)
def test_link(benchmark, target):
    machine = RemoteMachine(target)
    obj = machine.assemble(machine.compile_c(_SOURCE))
    exe = benchmark(machine.link, [obj])
    assert exe is not None


@pytest.mark.parametrize("target", TARGETS)
def test_execute(benchmark, target):
    machine = RemoteMachine(target)
    exe = machine.link([machine.assemble(machine.compile_c(_SOURCE))])
    result = benchmark(machine.execute, exe)
    assert result.ok and result.output == "3628800\n"
    benchmark.extra_info["steps"] = result.steps


@pytest.mark.parametrize("target", TARGETS)
def test_full_compile_run_cycle(benchmark, target):
    """One compile+assemble+link+execute round trip: the unit of cost of
    a single sample or mutation in the discovery pipeline."""
    machine = RemoteMachine(target)

    def cycle():
        return machine.run_c([_SOURCE])

    result = benchmark(cycle)
    assert result.output == "3628800\n"
