"""The enquire probes: type sizes, word width, endianness.

Pemberton's ``enquire`` ran on the target to determine "endian-ness and
sizes and alignment of data types" (paper section 7.2.1: "parts of
enquire have been included into our system").  The same black-box idea:
compile and run tiny C programs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscoveryError

_SIZES_PROBE = (
    'main(){ printf("%i %i %i\\n", sizeof(int), sizeof(char), sizeof(int*)); exit(0); }'
)

_ENDIAN_PROBE = (
    "main(){int a; char *p; a = 258; p = (char*)&a;"
    ' printf("%i\\n", *p); exit(0); }'
)


@dataclass(frozen=True)
class EnquireResult:
    int_size: int
    char_size: int
    pointer_size: int
    endian: str  # "little" | "big"

    @property
    def word_bits(self):
        return self.int_size * 8

    def describe(self):
        return (
            f"sizeof(int)={self.int_size} sizeof(char)={self.char_size} "
            f"sizeof(int*)={self.pointer_size} {self.endian}-endian "
            f"({self.word_bits}-bit words)"
        )


def enquire(machine):
    """Run the size and endianness probes on the target."""
    result = machine.run_c([_SIZES_PROBE])
    if not result.ok:
        raise DiscoveryError(f"size probe failed: {result.error}")
    try:
        int_size, char_size, pointer_size = map(int, result.output.split())
    except ValueError as exc:
        raise DiscoveryError(f"unparsable size probe output {result.output!r}") from exc

    result = machine.run_c([_ENDIAN_PROBE])
    if not result.ok:
        raise DiscoveryError(f"endianness probe failed: {result.error}")
    # 258 = 0x102: the byte at the *lowest* address is 2 on a
    # little-endian machine and 0 on a big-endian one.
    low_byte = int(result.output.strip())
    endian = "little" if low_byte == 2 else "big"
    return EnquireResult(int_size, char_size, pointer_size, endian)
