"""Pricing the hardened control plane under multi-tenant load.

No discovery runs here: the fleet loop stays off, so every number is
pure control-plane cost.  Three observations, all recorded in
``BENCH_service_load.json``:

* **control_plane_latency** -- concurrent clients hammering the
  submit/status/stats surface, measured twice: open mode and with a
  ``clients.json`` tenant table in force.  The delta prices the whole
  auth + quota + admission layer per request.

* **batched_vs_single_cache** -- a worker warming up against N cached
  entries via :class:`RemoteProbeCache` (whole-shard prefetch +
  buffered batch puts) versus the same traffic as single-entry HTTP
  round trips.  The batch protocol must collapse N round trips into
  O(1).

* **shed_behaviour** -- submissions past the backlog watermark.  The
  service must refuse with a typed 503 + ``Retry-After``, and the
  refusal must be much cheaper than an admission (shedding that costs
  as much as serving is not shedding).
"""

import json
import threading
import time
import urllib.request

from benchmarks import _emit

from repro.service.app import DiscoveryService
from repro.service.cache_client import RemoteProbeCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.httpd import serve

_QUIET = lambda *args, **kwargs: None  # noqa: E731

THREADS = 8
REQUESTS_PER_THREAD = 25
CACHE_ENTRIES = 200
WATERMARK = 8

TENANTS = {
    "clients": [
        {
            "name": f"tenant-{index}",
            "token": f"tenant-{index}-token",
            "max_queued_jobs": 100_000,
            "max_concurrent_targets": 100_000,
        }
        for index in range(THREADS)
    ]
}


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _service(root, **knobs):
    """An HTTP-fronted service with the fleet loop off: submissions
    stay queued, so the control plane is all we measure."""
    service = DiscoveryService(root, echo=_QUIET, **knobs)
    service.adopt()
    server = serve(service, port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()

    def teardown():
        server.shutdown()
        server.server_close()
        service.cache.close()
        thread.join(timeout=5.0)

    return service, server.url, teardown


def _hammer(url, token=None):
    """THREADS concurrent clients, each mixing the control-plane verbs;
    returns per-request latencies in milliseconds."""
    samples = [[] for _ in range(THREADS)]

    def client_loop(index):
        client = ServiceClient(url, token=token and f"tenant-{index}-token")
        job_id = None
        for turn in range(REQUESTS_PER_THREAD):
            start = time.perf_counter()
            if turn % 5 == 0:
                job_id = client.submit(["vax"])["id"]
            elif turn % 5 == 1 and job_id is not None:
                client.status(job_id)
            elif turn % 5 == 2:
                client.stats()
            elif turn % 5 == 3:
                client.jobs()
            else:
                client.healthz()
            samples[index].append((time.perf_counter() - start) * 1000.0)

    threads = [
        threading.Thread(target=client_loop, args=(index,))
        for index in range(THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    flat = [ms for per_thread in samples for ms in per_thread]
    return {
        "requests": len(flat),
        "p50_ms": round(_percentile(flat, 0.50), 3),
        "p95_ms": round(_percentile(flat, 0.95), 3),
        "throughput_rps": round(len(flat) / elapsed, 1),
    }


def test_control_plane_latency(benchmark, tmp_path):
    def run():
        _, url, teardown = _service(tmp_path / "open", max_backlog=10_000)
        try:
            open_mode = _hammer(url)
        finally:
            teardown()

        root = tmp_path / "tenanted"
        root.mkdir()
        (root / "clients.json").write_text(json.dumps(TENANTS))
        _, url, teardown = _service(root, max_backlog=10_000)
        try:
            tenanted = _hammer(url, token=True)
        finally:
            teardown()

        return {
            "threads": THREADS,
            "open": open_mode,
            "tenanted": tenanted,
            "auth_overhead_p50_ms": round(
                tenanted["p50_ms"] - open_mode["p50_ms"], 3
            ),
        }

    payload = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(payload)
    _emit.record("service_load", {"control_plane_latency": payload})

    assert payload["open"]["requests"] == THREADS * REQUESTS_PER_THREAD
    assert payload["tenanted"]["requests"] == THREADS * REQUESTS_PER_THREAD


def test_batched_vs_single_cache(benchmark, tmp_path):
    def run():
        service, url, teardown = _service(tmp_path / "root")
        fingerprint = "fp16charfp16char"
        for index in range(CACHE_ENTRIES):
            service.cache.put(
                fingerprint, "execute", f"h{index:05d}", {"n": index}
            )
        try:
            remote = RemoteProbeCache(url)
            start = time.perf_counter()
            for index in range(CACHE_ENTRIES):
                assert remote.get(fingerprint, "execute", f"h{index:05d}")
            batched_s = time.perf_counter() - start
            batched_trips = remote.round_trips
            remote.close()

            start = time.perf_counter()
            for index in range(CACHE_ENTRIES):
                with urllib.request.urlopen(
                    f"{url}/cache/{fingerprint}/execute:h{index:05d}",
                    timeout=10,
                ) as resp:
                    assert json.loads(resp.read())["n"] == index
            single_s = time.perf_counter() - start

            return {
                "entries": CACHE_ENTRIES,
                "batched_round_trips": batched_trips,
                "batched_s": round(batched_s, 4),
                "single_requests": CACHE_ENTRIES,
                "single_s": round(single_s, 4),
                "speedup": round(single_s / batched_s, 1) if batched_s else None,
            }
        finally:
            teardown()

    payload = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(payload)
    _emit.record("service_load", {"batched_vs_single_cache": payload})

    # the batch contract: N warm lookups cost O(1) round trips
    assert payload["batched_round_trips"] == 1
    assert payload["batched_s"] < payload["single_s"]


def test_shed_behaviour(benchmark, tmp_path):
    def run():
        service, url, teardown = _service(
            tmp_path / "root", max_backlog=WATERMARK
        )
        try:
            client = ServiceClient(url)
            admitted, shed, admit_ms, shed_ms = 0, 0, [], []
            retry_hints = []
            for _ in range(WATERMARK * 3):
                start = time.perf_counter()
                try:
                    client.submit(["vax"])
                    admit_ms.append((time.perf_counter() - start) * 1000.0)
                    admitted += 1
                except ServiceError as exc:
                    shed_ms.append((time.perf_counter() - start) * 1000.0)
                    assert exc.status == 503 and exc.code == "overloaded"
                    retry_hints.append(exc.retry_after)
                    shed += 1
            return {
                "watermark": WATERMARK,
                "admitted": admitted,
                "shed": shed,
                "admit_p95_ms": round(_percentile(admit_ms, 0.95), 3),
                "shed_p95_ms": round(_percentile(shed_ms, 0.95), 3),
                "retry_after_present": all(h is not None for h in retry_hints),
                "shed_counter": service.shed["overloaded"],
            }
        finally:
            teardown()

    payload = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(payload)
    _emit.record("service_load", {"shed_behaviour": payload})

    assert payload["admitted"] == WATERMARK
    assert payload["shed"] == WATERMARK * 2
    assert payload["shed_counter"] == payload["shed"]
    assert payload["retry_after_present"]
    # a refusal that costs as much as an admission is not shedding:
    # shed answers never touch the job store
    assert payload["shed_p95_ms"] <= payload["admit_p95_ms"]
