"""Client identity, quotas, and the typed API-error envelope.

The control plane is multi-tenant the moment two clients share one
``repro serve``; this module owns who a request *is* and what it may
cost the service:

* :class:`ApiError` -- the one exception the HTTP layer translates
  into a status code + ``{"error": {...}}`` envelope.  Every refusal
  the hardening layer makes (401 unauthenticated, 403 forbidden, 429
  quota, 503 overloaded/draining) is an ``ApiError`` with an explicit
  status, a stable machine-readable ``code``, and -- for the retryable
  ones -- a ``Retry-After`` hint the client backoff honours.
* :class:`Client` -- one tenant: a bearer token plus its quota knobs
  (queued jobs, concurrent targets, cache writes).  ``None`` for any
  quota means unlimited.
* :class:`ClientRegistry` -- the ``clients.json`` root file, reloaded
  on mtime change so an operator can rotate tokens or tighten quotas
  without a restart.  **No file means open mode**: every request maps
  to one anonymous unlimited client, which is exactly the PR-7
  behaviour -- auth is opt-in by dropping the file in the service
  root.  The service's own fleet workers authenticate with a
  process-local token (:meth:`ClientRegistry.issue_fleet_token`)
  handed to them via the environment, never argv, so ``ps`` cannot
  leak it.

``clients.json`` shape::

    {
      "clients": [
        {"name": "alice", "token": "s3cret",
         "max_queued_jobs": 4, "max_concurrent_targets": 8,
         "max_cache_writes": 200000, "admin": false}
      ]
    }

Everything here is venue: admission, identity and quotas decide *when*
a campaign runs, never what it discovers, so no check in this module
can change a spec.
"""

from __future__ import annotations

import json
import pathlib
import secrets
from dataclasses import dataclass

from repro.errors import DiscoveryError

#: per-client defaults applied when clients.json omits a knob
DEFAULT_MAX_QUEUED_JOBS = 8
DEFAULT_MAX_CONCURRENT_TARGETS = 16
DEFAULT_MAX_CACHE_WRITES = 1_000_000


class ApiError(DiscoveryError):
    """A typed control-plane refusal: HTTP status, stable code, and an
    optional Retry-After hint for the 429/503 family."""

    def __init__(self, status, code, message, retry_after=None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after

    def envelope(self):
        body = {"code": self.code, "message": str(self)}
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        return {"error": body}


@dataclass(frozen=True)
class Client:
    """One authenticated tenant and its spending limits."""

    name: str
    token: str | None = None
    max_queued_jobs: int | None = DEFAULT_MAX_QUEUED_JOBS
    max_concurrent_targets: int | None = DEFAULT_MAX_CONCURRENT_TARGETS
    max_cache_writes: int | None = DEFAULT_MAX_CACHE_WRITES
    admin: bool = False

    def may_act_on(self, job):
        """Ownership gate for mutating verbs (cancel) and spec fetch:
        the submitting client, an admin, or a job from before auth was
        enabled (no recorded owner)."""
        owner = job.get("client")
        return self.admin or owner is None or owner == self.name


#: the open-mode identity: unlimited, owns everything
ANONYMOUS = Client(
    name="anonymous",
    max_queued_jobs=None,
    max_concurrent_targets=None,
    max_cache_writes=None,
    admin=True,
)


def _parse_clients(raw):
    if not isinstance(raw, dict) or not isinstance(raw.get("clients"), list):
        raise DiscoveryError('clients.json must be {"clients": [...]}')
    clients = {}
    for index, entry in enumerate(raw["clients"]):
        if not isinstance(entry, dict):
            raise DiscoveryError(f"clients[{index}] must be an object")
        name, token = entry.get("name"), entry.get("token")
        if not name or not isinstance(name, str):
            raise DiscoveryError(f"clients[{index}]: a non-empty name is required")
        if not token or not isinstance(token, str):
            raise DiscoveryError(f"client {name!r}: a non-empty token is required")
        if token in clients:
            raise DiscoveryError(f"client {name!r}: duplicate token")

        def _quota(key, default):
            value = entry.get(key, default)
            if value is None:
                return None
            try:
                return max(0, int(value))
            except (TypeError, ValueError):
                raise DiscoveryError(
                    f"client {name!r}: {key} must be an integer or null"
                ) from None

        clients[token] = Client(
            name=name,
            token=token,
            max_queued_jobs=_quota("max_queued_jobs", DEFAULT_MAX_QUEUED_JOBS),
            max_concurrent_targets=_quota(
                "max_concurrent_targets", DEFAULT_MAX_CONCURRENT_TARGETS
            ),
            max_cache_writes=_quota("max_cache_writes", DEFAULT_MAX_CACHE_WRITES),
            admin=bool(entry.get("admin", False)),
        )
    return clients


class ClientRegistry:
    """The tenant table, sourced from ``<root>/clients.json``.

    The file is re-read whenever its mtime moves (token rotation
    without a restart); a file that *becomes* unreadable keeps the
    last good table rather than failing open or taking the service
    down -- the operator sees ``reload_errors`` climb in ``/stats``.
    """

    def __init__(self, path=None):
        self.path = pathlib.Path(path) if path else None
        self._mtime = None
        self._by_token = {}
        self._fleet_tokens = {}
        self.reload_errors = 0
        if self.path is not None and self.path.exists():
            self._load()  # strict at startup: a broken file fails loudly

    @property
    def open_mode(self):
        """True when no clients.json governs this service."""
        return not self._by_token

    def _load(self):
        stat = self.path.stat()
        self._by_token = _parse_clients(json.loads(self.path.read_text()))
        self._mtime = stat.st_mtime

    def maybe_reload(self):
        if self.path is None:
            return
        try:
            exists = self.path.exists()
            if not exists:
                if self._by_token:
                    # deleted clients.json drops the service back to
                    # open mode -- the operator removed the gate
                    self._by_token, self._mtime = {}, None
                return
            if self.path.stat().st_mtime != self._mtime:
                self._load()
        except (OSError, ValueError, DiscoveryError):
            self.reload_errors += 1  # keep the last good table

    def issue_fleet_token(self):
        """A process-local token for the service's own workers: never
        written to disk, unlimited quotas, dies with the process."""
        token = secrets.token_hex(16)
        self._fleet_tokens[token] = Client(
            name="fleet",
            token=token,
            max_queued_jobs=None,
            max_concurrent_targets=None,
            max_cache_writes=None,
            admin=True,
        )
        return token

    def authenticate(self, authorization):
        """Map an ``Authorization`` header to a :class:`Client`, or
        raise a typed 401.  Open mode authenticates everyone as the
        anonymous unlimited client."""
        self.maybe_reload()
        token = None
        if authorization:
            scheme, _, credential = authorization.partition(" ")
            if scheme.lower() != "bearer" or not credential.strip():
                raise ApiError(
                    401, "unauthenticated", "Authorization must be 'Bearer <token>'"
                )
            token = credential.strip()
        if token is not None and token in self._fleet_tokens:
            return self._fleet_tokens[token]
        if self.open_mode:
            return ANONYMOUS
        if token is None:
            raise ApiError(
                401, "unauthenticated", "a bearer token is required (clients.json)"
            )
        client = self._by_token.get(token)
        if client is None:
            raise ApiError(401, "unauthenticated", "unknown bearer token")
        return client

    def clients(self):
        """The configured tenants, name order (for /stats)."""
        return sorted(self._by_token.values(), key=lambda c: c.name)
