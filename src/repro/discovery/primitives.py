"""The reverse interpreter's primitive instructions (paper Figure 14).

Types: Int (I), Bool (B), Address (A), Label (L), Condition code (C).
All integer arithmetic is performed at the discovered word width
(section 5.2.1: "we simulate arithmetic in the correct precision").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import wordops


@dataclass(frozen=True)
class Primitive:
    name: str
    signature: tuple  # argument types
    result: str
    comment: str = ""


#: the full Figure 14 table
PRIMITIVES = {
    p.name: p
    for p in [
        Primitive("add", ("I", "I"), "I", "add(a,b) = a + b"),
        Primitive("sub", ("I", "I"), "I", "sub(a,b) = a - b"),
        Primitive("mul", ("I", "I"), "I", "mul(a,b) = a * b"),
        Primitive("div", ("I", "I"), "I", "div(a,b) = a / b (truncating)"),
        Primitive("mod", ("I", "I"), "I", "mod(a,b) = a rem b"),
        Primitive("abs", ("I",), "I", "abs(a) = |a|"),
        Primitive("neg", ("I",), "I", "neg(a) = -a"),
        Primitive("not", ("I",), "I", "not(a) = ~a"),
        Primitive("move", ("I",), "I", "move(a) = a"),
        Primitive("and", ("I", "I"), "I", "and(a,b) = a & b"),
        Primitive("or", ("I", "I"), "I", "or(a,b) = a | b"),
        Primitive("xor", ("I", "I"), "I", "xor(a,b) = a ^ b"),
        Primitive("shiftLeft", ("I", "I"), "I", "shiftLeft(a,b) = a << b"),
        Primitive("shiftRight", ("I", "I"), "I", "shiftRight(a,b) = a >> b (arithmetic)"),
        Primitive("shiftRightU", ("I", "I"), "I", "logical right shift"),
        Primitive("ignore1", ("I", "I"), "I", "ignore1(a,b) = b"),
        Primitive("ignore2", ("I", "I"), "I", "ignore2(a,b) = a"),
        Primitive("compare", ("I", "I"), "C", "compare(a,b) = (a<b, a=b, a>b)"),
        Primitive("isEQ", ("C",), "B", "true for an equal condition"),
        Primitive("isNE", ("C",), "B", ""),
        Primitive("isLT", ("C",), "B", ""),
        Primitive("isLE", ("C",), "B", ""),
        Primitive("isGT", ("C",), "B", ""),
        Primitive("isGE", ("C",), "B", ""),
        Primitive("brTrue", ("B", "L"), "", "branch on true"),
        Primitive("brFalse", ("B", "L"), "", "branch on false"),
        Primitive("nop", (), "", "no operation"),
        Primitive("load", ("A",), "I", "load(a) = M[a]"),
        Primitive("store", ("A", "I"), "", "store(a,b): M[a] <- b"),
        Primitive("loadLit", ("Lit",), "I", "loadLit(a) = a"),
        Primitive("loadAddr", ("Addr",), "A", "loadAddr(a) = a"),
    ]
}

#: integer primitives usable inside reverse-interpretation terms,
#: mapping name -> (arity, evaluator(bits, *args))
TERM_PRIMS = {
    "add": (2, lambda bits, a, b: wordops.add(a, b, bits)),
    "sub": (2, lambda bits, a, b: wordops.sub(a, b, bits)),
    "mul": (2, lambda bits, a, b: wordops.mul(a, b, bits)),
    "div": (2, lambda bits, a, b: wordops.sdiv(a, b, bits)),
    "mod": (2, lambda bits, a, b: wordops.smod(a, b, bits)),
    "and": (2, lambda bits, a, b: a & b),
    "or": (2, lambda bits, a, b: a | b),
    "xor": (2, lambda bits, a, b: a ^ b),
    "shiftLeft": (2, lambda bits, a, b: wordops.shl(a, b, bits)),
    "shiftRight": (2, lambda bits, a, b: wordops.shr_arith(a, b, bits)),
    "shiftRightU": (2, lambda bits, a, b: wordops.shr_logical(a, b, bits)),
    "neg": (1, lambda bits, a: wordops.neg(a, bits)),
    "not": (1, lambda bits, a: wordops.bit_not(a, bits)),
    "abs": (1, lambda bits, a: wordops.mask(abs(wordops.to_signed(a, bits)), bits)),
}

#: which term primitive corresponds to each C operator in the samples
C_OP_PRIM = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shiftLeft",
    ">>": "shiftRight",
    "u-": "neg",  # unary minus
    "~": "not",
}

#: comparison evaluators for the branch analysis
RELATIONS = {
    "isLT": lambda a, b: a < b,
    "isLE": lambda a, b: a <= b,
    "isGT": lambda a, b: a > b,
    "isGE": lambda a, b: a >= b,
    "isEQ": lambda a, b: a == b,
    "isNE": lambda a, b: a != b,
}

C_REL_NAME = {
    "<": "isLT",
    "<=": "isLE",
    ">": "isGT",
    ">=": "isGE",
    "==": "isEQ",
    "!=": "isNE",
}

#: mnemonic substring hints for the N(I,R) likelihood component
NAME_HINTS = {
    "add": ("add", "plus", "inc"),
    "sub": ("sub", "min", "dec"),
    "mul": ("mul", "mlt", "mpy"),
    "div": ("div",),
    "mod": ("rem", "mod"),
    "and": ("and", "bic"),
    "or": ("or", "bis"),
    "xor": ("xor", "eor"),
    "shiftLeft": ("sll", "shl", "lsh", "sal", "ash"),
    "shiftRight": ("sra", "sar", "shr", "rsh", "ash"),
    "shiftRightU": ("srl", "shr", "lsr"),
    "neg": ("neg",),
    "not": ("not", "com"),
    "move": ("mov", "ld", "lw", "set", "li", "lda", "st", "sw", "push", "pop"),
}
