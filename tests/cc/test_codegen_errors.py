"""Code-generator diagnostics and structural properties."""

import pytest

from repro.cc import compiler_for
from repro.errors import CompilerError
from repro.machines.machine import target_names


@pytest.fixture(params=target_names(), scope="module")
def cc(request):
    return compiler_for(request.param)


class TestDiagnostics:
    def test_comparison_as_value_rejected(self, cc):
        with pytest.raises(CompilerError):
            cc.compile("main(){ int a, b; a = (b < 3); }")

    def test_too_many_parameters_rejected(self, cc):
        params = ", ".join(f"int p{i}" for i in range(9))
        if cc.target in ("x86", "vax", "m68k"):
            # Stack conventions take any number of parameters.
            cc.compile(f"int F({params}){{ return p0; }}")
        else:
            with pytest.raises(CompilerError):
                cc.compile(f"int F({params}){{ return p0; }}")

    def test_unknown_statement_constructs_rejected(self, cc):
        with pytest.raises(CompilerError):
            cc.compile("main(){ switch; }")

    def test_byte_stores_rejected(self, cc):
        with pytest.raises(CompilerError):
            cc.compile("main(){ char *p; int a; p = (char*)&a; *p = 1; }")


class TestStructure:
    def test_output_has_sections_and_entry(self, cc):
        asm = cc.compile('main(){ printf("%i\\n", 1); exit(0); }')
        assert ".text" in asm
        assert ".globl main" in asm
        assert ".data" in asm  # the format string

    def test_string_literals_deduplicated(self, cc):
        asm = cc.compile(
            'main(){ printf("%i\\n", 1); printf("%i\\n", 2); exit(0); }'
        )
        assert asm.count('.asciz "%i\\n"') == 1

    def test_globals_exported(self, cc):
        asm = cc.compile("int shared = 3;")
        assert ".globl shared" in asm

    def test_extern_emits_no_storage(self, cc):
        asm = cc.compile("extern int z1;")
        assert "z1:" not in asm

    def test_each_compilation_is_independent(self, cc):
        first = cc.compile("main(){ exit(0); }")
        second = cc.compile("main(){ exit(0); }")
        assert first == second
