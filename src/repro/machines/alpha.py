"""Simulated Digital Alpha integer subset (little-endian, 64-bit).

Reproduces the paper's Alpha idioms: ``ldq``/``stq`` with ``disp($sp)``
addressing, ``ldiq``/``ldil`` literal loads, dst-last three-operand
arithmetic whose second operand may be an 8-bit literal (``addl $1, 0,
$2`` -- also the redundant-move idiom of Figure 4d), and two-instruction
branching via ``cmpeq`` + ``bne``/``beq`` (the Synthesizer's Combiner
case in section 6).

Simplification vs. real hardware: integer division is a real instruction
(``divl``/``reml``) rather than a software routine, and ``int`` is 8
bytes so every operation is uniformly 64-bit.
"""

from __future__ import annotations

import re

from repro import wordops
from repro.errors import ExecutionError
from repro.machines.executor import effaddr, read, write
from repro.machines.isa import Abi, InstrDef, InstrForm, Isa, RegisterDef, SyntaxDef
from repro.machines.operands import Bare, Imm, Mem, Reg

WORD = 64
LIT8 = (0, 255)

_REG_RE = re.compile(r"^\$(\d+|sp|fp|ra)$")
_MEM_RE = re.compile(r"^(-?\w*)\((\$(?:\d+|sp|fp|ra))\)$")
_ID_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


class AlphaSyntax(SyntaxDef):
    comment_char = "#"
    literal_bases = {"": 10, "0x": 16}

    def parse_operand(self, text):
        text = text.strip()
        if not text:
            raise ValueError("empty operand")
        if _REG_RE.match(text):
            return Reg(text)
        match = _MEM_RE.match(text)
        if match:
            disp_text, base = match.group(1), match.group(2)
            disp = 0 if disp_text == "" else self.parse_int(disp_text)
            if disp is None:
                raise ValueError(f"malformed displacement in {text!r}")
            return Mem(disp, base)
        value = self.parse_int(text)
        if value is not None:
            return Imm(value)
        if text.startswith("$"):
            raise ValueError(f"malformed register {text!r}")
        if _ID_RE.match(text):
            return Bare(text)
        raise ValueError(f"malformed operand {text!r}")

    def render_operand(self, op):
        if isinstance(op, Reg):
            return op.name
        if isinstance(op, Imm):
            return str(op.value)
        if isinstance(op, Mem):
            disp = op.disp if isinstance(op.disp, int) else op.disp.name
            return f"{disp}({op.base})"
        return str(getattr(op, "target", getattr(op, "name", op)))


def _ldq(state, ops):
    write(state, ops[0], state.mem.load(effaddr(state, ops[1]), 8))


def _ldbu(state, ops):
    write(state, ops[0], state.mem.load(effaddr(state, ops[1]), 1))


def _stq(state, ops):
    state.mem.store(effaddr(state, ops[1]), read(state, ops[0]), 8)


def _ldi(state, ops):
    write(state, ops[0], read(state, ops[1]))


def _lda(state, ops):
    write(state, ops[0], effaddr(state, ops[1]))


def _mov(state, ops):
    write(state, ops[1], read(state, ops[0]))


def _binop(fn, check_zero=False):
    def execute(state, ops):
        a = read(state, ops[0])
        b = read(state, ops[1])
        if check_zero and wordops.mask(b, WORD) == 0:
            raise ExecutionError("division by zero")
        write(state, ops[2], fn(a, b, WORD))

    return execute


def _negl(state, ops):
    write(state, ops[1], wordops.neg(read(state, ops[0]), WORD))


def _ornot(state, ops):
    a = read(state, ops[0])
    b = read(state, ops[1])
    write(state, ops[2], wordops.bor(a, wordops.bit_not(b, WORD), WORD))


def _compare(cond):
    def execute(state, ops):
        a = wordops.to_signed(read(state, ops[0]), WORD)
        b = wordops.to_signed(read(state, ops[1]), WORD)
        write(state, ops[2], 1 if cond(a, b) else 0)

    return execute


def _breg(cond):
    def execute(state, ops):
        value = wordops.to_signed(read(state, ops[0]), WORD)
        if cond(value):
            state.branch(read(state, ops[1]))

    return execute


def _br(state, ops):
    state.branch(read(state, ops[0]))


def _jsr(state, ops):
    state.set_reg(ops[0].name, state.pc)
    state.branch(read(state, ops[1]))


def _ret(state, ops):
    state.branch(wordops.to_signed(state.get_reg("$26"), WORD))


def _nop(state, ops):
    pass


class AlphaAbi(Abi):
    stack_pointer = "$30"

    def get_arg(self, state, index):
        if index < 6:
            return state.get_reg(f"${16 + index}")
        sp = state.get_reg("$30")
        return state.mem.load(sp + 8 * (index - 6), 8)

    def set_retval(self, state, value):
        state.set_reg("$0", value)

    def do_return(self, state):
        state.branch(wordops.to_signed(state.get_reg("$26"), WORD))

    def setup_entry(self, state, entry_index, halt_index):
        state.set_reg("$26", halt_index)
        state.pc = entry_index


def build_isa():
    registers = []
    for n in range(0, 31):
        aliases = {30: ("$sp",), 15: ("$fp",), 26: ("$ra",)}.get(n, ())
        allocatable = n in range(1, 15) or n in range(22, 26)
        registers.append(RegisterDef(f"${n}", aliases=aliases, allocatable=allocatable))
    registers.append(RegisterDef("$31", hardwired=0, allocatable=False))

    instructions = {}

    def define(mnemonic, *forms):
        instructions[mnemonic] = InstrDef(mnemonic, list(forms))

    define("ldq", InstrForm(("r", "m"), _ldq))
    define("ldbu", InstrForm(("r", "m"), _ldbu))
    define("stq", InstrForm(("r", "m"), _stq))
    define("ldiq", InstrForm(("r", "i"), _ldi))
    define("ldil", InstrForm(("r", "i"), _ldi))
    define("lda", InstrForm(("r", "m"), _lda))
    define("mov", InstrForm(("ri", "r"), _mov))
    for mnemonic, fn, zero in [
        ("addl", wordops.add, False),
        ("subl", wordops.sub, False),
        ("mull", wordops.mul, False),
        ("divl", wordops.sdiv, True),
        ("reml", wordops.smod, True),
        ("and", wordops.band, False),
        ("bis", wordops.bor, False),
        ("xor", wordops.bxor, False),
        ("sll", wordops.shl, False),
        ("srl", wordops.shr_logical, False),
        ("sra", wordops.shr_arith, False),
    ]:
        define(
            mnemonic,
            InstrForm(("r", "ri", "r"), _binop(fn, check_zero=zero), imm_ranges={1: LIT8}),
        )
    define("negl", InstrForm(("r", "r"), _negl))
    define("ornot", InstrForm(("r", "ri", "r"), _ornot, imm_ranges={1: LIT8}))
    define("cmpeq", InstrForm(("r", "ri", "r"), _compare(lambda a, b: a == b), imm_ranges={1: LIT8}))
    define("cmplt", InstrForm(("r", "ri", "r"), _compare(lambda a, b: a < b), imm_ranges={1: LIT8}))
    define("cmple", InstrForm(("r", "ri", "r"), _compare(lambda a, b: a <= b), imm_ranges={1: LIT8}))
    define("beq", InstrForm(("r", "l"), _breg(lambda v: v == 0)))
    define("bne", InstrForm(("r", "l"), _breg(lambda v: v != 0)))
    define("blt", InstrForm(("r", "l"), _breg(lambda v: v < 0)))
    define("ble", InstrForm(("r", "l"), _breg(lambda v: v <= 0)))
    define("bgt", InstrForm(("r", "l"), _breg(lambda v: v > 0)))
    define("bge", InstrForm(("r", "l"), _breg(lambda v: v >= 0)))
    define("br", InstrForm(("l",), _br))
    define("jsr", InstrForm(("r", "l"), _jsr))
    define("ret", InstrForm((), _ret))
    define("nop", InstrForm((), _nop))

    return Isa(
        name="alpha",
        word_bits=WORD,
        endian="little",
        registers=registers,
        instructions=instructions,
        syntax=AlphaSyntax(),
        abi=AlphaAbi(),
        int_size=8,
        pointer_size=8,
        stack_start=0x10_0000,
        call_mnemonics=("jsr",),
    )
