"""Persistent content-addressed probe cache for remote-target verbs.

The paper's discovery unit issues thousands of tiny compile / assemble /
execute probes, and its cost is dominated by target round-trips; yet the
answers are pure functions of (target, toolchain, probe content).  This
module memoises them so repeat and resumed runs skip remote work
entirely -- the incremental-rediscovery idea of "Retargeting GCC: Do We
Reinvent the Wheel Every Time?" applied at the probe level.

Three pieces:

* :func:`target_fingerprint` -- identifies *which machine's answers*
  an entry belongs to: target name, toolchain command lines, execution
  fuel and the cache schema version.  Two different architectures (or
  the same one behind different toolchain flags) can never share an
  entry, because the fingerprint prefixes every key.
* :class:`ProbeCache` -- a thread-safe content-addressed store.  Keys
  are ``fingerprint:verb:content-hash``; values are small JSON payloads.
  Persistence is an append-only JSONL shard per fingerprint (crash-safe:
  a torn write corrupts one line, which is detected, counted and treated
  as a miss), with LRU eviction above ``max_entries`` and hit / miss /
  write / eviction / corruption counters for the reports.
* :class:`CachingMachine` -- wraps any four-verb machine (normally the
  top of a resilience stack, so only *vetted* answers are cached) behind
  the same surface.  Object and executable handles become *lazy*: they
  carry the content hash of the sources they were built from, so a warm
  ``assemble -> link -> execute`` chain is answered from the cache
  without the target ever being contacted; the real toolchain runs only
  on a miss, to materialise the handle the inner machine needs.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import AssemblerError, LinkerError

#: bump when the entry payload schema changes: old entries must miss
CACHE_FORMAT = 1


@dataclass
class CachedExecResult:
    """A replayed execution outcome.  Mirrors the executor's ExecResult
    interface (output/exit_code/steps/error/ok/same_result) without
    importing machine internals -- discovery treats the target as a
    black box, cached or live."""

    output: str
    exit_code: int = 0
    steps: int = 0
    error: str | None = None

    @property
    def ok(self):
        return self.error is None

    def same_result(self, other):
        return self.ok and other.ok and self.output == other.output


def _hash_text(*parts):
    digest = hashlib.sha256()
    for part in parts:
        data = part if isinstance(part, bytes) else str(part).encode("utf-8")
        digest.update(len(data).to_bytes(8, "little"))
        digest.update(data)
    return digest.hexdigest()[:32]


def target_fingerprint(machine):
    """Content address of *the machine being asked*: target name,
    toolchain command lines and execution fuel.  Changing any toolchain
    flag changes the fingerprint, invalidating every cached answer."""
    toolchain = machine.toolchain
    fuel = None
    probe = machine
    while probe is not None and fuel is None:
        fuel = getattr(probe, "fuel", None)
        probe = getattr(probe, "inner", None)
    return _hash_text(
        f"format={CACHE_FORMAT}",
        machine.target,
        toolchain.host,
        toolchain.cc,
        toolchain.asm,
        toolchain.ld,
        f"fuel={fuel}",
    )[:16]


@dataclass
class CacheStats:
    """Counters the driver surfaces in the DiscoveryReport."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt_entries: int = 0
    loaded: int = 0
    hits_by_verb: dict = field(default_factory=dict)
    misses_by_verb: dict = field(default_factory=dict)

    def snapshot(self):
        return CacheStats(
            self.hits,
            self.misses,
            self.writes,
            self.evictions,
            self.corrupt_entries,
            self.loaded,
            dict(self.hits_by_verb),
            dict(self.misses_by_verb),
        )

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        return self.hits / self.lookups if self.lookups else 0.0


class ProbeCache:
    """Content-addressed probe store, persistent when given a directory.

    ``directory=None`` keeps a purely in-memory cache (deduplicates
    probes within one run).  Otherwise each target fingerprint gets an
    append-only ``probes-<fingerprint>.jsonl`` shard under the
    directory; shards are loaded lazily on first touch, entries are
    appended write-through, and shards shrunk by eviction are compacted
    on :meth:`close`.
    """

    def __init__(self, directory=None, max_entries=1_000_000):
        self.directory = pathlib.Path(directory) if directory else None
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: shard-GC lifetime counters (see :meth:`gc`)
        self.gc_stats = {
            "runs": 0,
            "evicted_shards": 0,
            "reclaimed_bytes": 0,
            "compacted_shards": 0,
            "last": None,
        }
        self._entries = OrderedDict()  # key -> payload dict (LRU order)
        self._loaded_shards = set()  # fingerprints already read from disk
        self._dirty_shards = set()  # fingerprints needing compaction
        self._touched = {}  # fingerprint -> wall-clock stamp of last use
        self._lock = threading.RLock()

    @staticmethod
    def _wall_now():
        """Retention ages are compared against shard file mtimes, so
        the wall clock is the only coherent reference.  Venue-only: GC
        decides what the cache *retains*, never what a probe answers."""
        import time

        return time.time()  # detlint: ok[DET003] - venue-only retention clock

    # -- the store ----------------------------------------------------

    def get(self, fingerprint, verb, content_hash):
        """The cached payload for a probe, or None on a miss."""
        key = f"{fingerprint}:{verb}:{content_hash}"
        with self._lock:
            self._ensure_shard(fingerprint)
            self._touched[fingerprint] = self._wall_now()
            payload = self._entries.get(key)
            if isinstance(payload, dict):
                self._entries.move_to_end(key)
                self.stats.hits += 1
                by = self.stats.hits_by_verb
                by[verb] = by.get(verb, 0) + 1
                return payload
            self.stats.misses += 1
            by = self.stats.misses_by_verb
            by[verb] = by.get(verb, 0) + 1
            return None

    def put(self, fingerprint, verb, content_hash, payload):
        """Record a probe answer (write-through when persistent)."""
        key = f"{fingerprint}:{verb}:{content_hash}"
        with self._lock:
            self._ensure_shard(fingerprint)
            self._touched[fingerprint] = self._wall_now()
            if key in self._entries:
                return
            self._entries[key] = payload
            self.stats.writes += 1
            self._append(fingerprint, key, verb, payload)
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._dirty_shards.add(evicted_key.split(":", 1)[0])

    def close(self):
        """Compact shards that lost entries to eviction."""
        with self._lock:
            for fingerprint in sorted(self._dirty_shards):
                self._compact(fingerprint)
            self._dirty_shards.clear()

    def _compact(self, fingerprint):
        """Rewrite one shard file from the live entries (the same
        machinery :meth:`close` and :meth:`gc` share)."""
        path = self._shard_path(fingerprint)
        if path is None:
            return
        prefix = f"{fingerprint}:"
        lines = [
            json.dumps({"k": key, "verb": key.split(":")[1], "v": payload})
            for key, payload in self._entries.items()
            if key.startswith(prefix)
        ]
        path.write_text("".join(line + "\n" for line in lines))

    def shard_entries(self, fingerprint):
        """Every live entry of one shard, ``{"verb:hash": payload}`` --
        the whole-shard read behind the batched ``/cache/batch``
        endpoint.  Deliberately not counted as hits or misses: a bulk
        snapshot is transport, not a probe lookup."""
        prefix = f"{fingerprint}:"
        with self._lock:
            self._ensure_shard(fingerprint)
            self._touched[fingerprint] = self._wall_now()
            return {
                key[len(prefix):]: payload
                for key, payload in self._entries.items()
                if key.startswith(prefix)
            }

    def describe(self):
        where = str(self.directory) if self.directory else "(in-memory)"
        return f"probe cache at {where}: {len(self._entries)} entries"

    def shard_stats(self):
        """Per-fingerprint entry/byte counts of the live store, plus
        the lifetime counters (hits, misses, writes, LRU evictions,
        corrupt entries).  The byte count prices the JSON payloads as
        stored, so operators can see which target's answers dominate
        the cache -- the number ``repro cache-info`` and the service
        ``/stats`` endpoint report."""
        with self._lock:
            shards = {}
            for key, payload in self._entries.items():
                fingerprint, verb, _ = key.split(":", 2)
                shard = shards.setdefault(
                    fingerprint, {"entries": 0, "bytes": 0, "by_verb": {}}
                )
                shard["entries"] += 1
                shard["bytes"] += len(json.dumps(payload))
                shard["by_verb"][verb] = shard["by_verb"].get(verb, 0) + 1
            return {
                "shards": shards,
                "entries": len(self._entries),
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "writes": self.stats.writes,
                "evictions": self.stats.evictions,
                "corrupt_entries": self.stats.corrupt_entries,
            }

    def __len__(self):
        return len(self._entries)

    # -- shard GC -----------------------------------------------------

    GC_SIDECAR = "gc-stats.json"

    def _shard_inventory(self):
        """Every shard the store knows about -- loaded or still only on
        disk -- with its size and last-touch time (in-memory touch
        beats file mtime, which covers shards written by earlier
        service runs)."""
        inventory = {}
        if self.directory is not None and self.directory.exists():
            for path in sorted(self.directory.glob("probes-*.jsonl")):
                fingerprint = path.stem[len("probes-"):]
                try:
                    stat = path.stat()
                except OSError:
                    continue
                inventory[fingerprint] = {
                    "bytes": stat.st_size,
                    "last_touch": stat.st_mtime,
                }
        for fingerprint, stamp in self._touched.items():
            shard = inventory.setdefault(
                fingerprint, {"bytes": 0, "last_touch": stamp}
            )
            shard["last_touch"] = max(shard["last_touch"], stamp)
        return inventory

    def _evict_shard(self, fingerprint):
        prefix = f"{fingerprint}:"
        for key in [k for k in self._entries if k.startswith(prefix)]:
            del self._entries[key]
        self._loaded_shards.discard(fingerprint)
        self._dirty_shards.discard(fingerprint)
        self._touched.pop(fingerprint, None)
        path = self._shard_path(fingerprint)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    def gc(self, max_bytes=None, max_age_s=None, pinned=(), now=None):
        """Bound the store: drop whole shards, LRU by fingerprint.

        Two independent retention rules, both venue-only (a dropped
        shard costs re-probing, never a different answer):

        * **age** -- a shard untouched for more than *max_age_s*
          seconds is dropped (a target nobody discovers against any
          more should not hold disk forever);
        * **size** -- while the shard files sum to more than
          *max_bytes*, the least-recently-touched shard is dropped.

        Fingerprints in *pinned* (targets with campaigns currently
        running) are never dropped by either rule.  Dirty-but-retained
        shards are compacted in the same pass, so eviction debt does
        not wait for :meth:`close`.  Returns a report dict; lifetime
        counters accumulate in :attr:`gc_stats`, and a persistent
        store journals the report to ``gc-stats.json`` so ``repro
        cache-info`` can show GC history for a cache nobody holds
        open."""
        pinned = set(pinned)
        with self._lock:
            if now is None:
                now = self._wall_now()
            inventory = self._shard_inventory()
            evicted, reclaimed = [], 0
            if max_age_s is not None:
                for fingerprint, shard in sorted(inventory.items()):
                    if fingerprint in pinned:
                        continue
                    if now - shard["last_touch"] > max_age_s:
                        self._evict_shard(fingerprint)
                        evicted.append(fingerprint)
                        reclaimed += shard["bytes"]
            if max_bytes is not None:
                live = {
                    fp: shard
                    for fp, shard in inventory.items()
                    if fp not in evicted
                }
                total = sum(shard["bytes"] for shard in live.values())
                # oldest-touched first; fingerprint tie-break for
                # determinism when stamps collide
                for fingerprint, shard in sorted(
                    live.items(), key=lambda item: (item[1]["last_touch"], item[0])
                ):
                    if total <= max_bytes:
                        break
                    if fingerprint in pinned:
                        continue
                    self._evict_shard(fingerprint)
                    evicted.append(fingerprint)
                    reclaimed += shard["bytes"]
                    total -= shard["bytes"]
            compacted = sorted(self._dirty_shards)
            for fingerprint in compacted:
                self._compact(fingerprint)
            self._dirty_shards.clear()
            report = {
                "evicted_shards": evicted,
                "reclaimed_bytes": reclaimed,
                "compacted_shards": len(compacted),
                "pinned": sorted(pinned),
                "shards_kept": len(inventory) - len(evicted),
            }
            self.gc_stats["runs"] += 1
            self.gc_stats["evicted_shards"] += len(evicted)
            self.gc_stats["reclaimed_bytes"] += reclaimed
            self.gc_stats["compacted_shards"] += len(compacted)
            self.gc_stats["last"] = report
            if self.directory is not None:
                try:
                    self.directory.mkdir(parents=True, exist_ok=True)
                    (self.directory / self.GC_SIDECAR).write_text(
                        json.dumps(self.gc_stats, indent=2, sort_keys=True) + "\n"
                    )
                except OSError:
                    pass  # GC bookkeeping must never fail the store
            return report

    # -- persistence --------------------------------------------------

    def _shard_path(self, fingerprint):
        if self.directory is None:
            return None
        return self.directory / f"probes-{fingerprint}.jsonl"

    def _ensure_shard(self, fingerprint):
        if fingerprint in self._loaded_shards:
            return
        self._loaded_shards.add(fingerprint)
        path = self._shard_path(fingerprint)
        if path is None or not path.exists():
            return
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key, payload = entry["k"], entry["v"]
                if not isinstance(key, str) or not isinstance(payload, dict):
                    raise ValueError("malformed entry")
            except (ValueError, KeyError, TypeError):
                # A torn or tampered line: fall back to a live probe for
                # whatever it held, never fail the run.
                self.stats.corrupt_entries += 1
                self._dirty_shards.add(fingerprint)
                continue
            if key not in self._entries:
                self._entries[key] = payload
                self.stats.loaded += 1

    def _append(self, fingerprint, key, verb, payload):
        path = self._shard_path(fingerprint)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"k": key, "verb": verb, "v": payload})
        with open(path, "a") as handle:
            handle.write(line + "\n")


# -- lazy handles -----------------------------------------------------


class _LazyObject:
    """An object handle addressed by the hash of its assembly source.

    ``real`` stays None until some miss forces the inner machine to
    actually assemble the text; a fully warm run never materialises."""

    __slots__ = ("content_hash", "asm_text", "real")

    def __init__(self, content_hash, asm_text, real=None):
        self.content_hash = content_hash
        self.asm_text = asm_text
        self.real = real

    def __repr__(self):
        state = "materialised" if self.real is not None else "lazy"
        return f"<object {self.content_hash[:8]} {state}>"


class _LazyExecutable:
    """An executable addressed by the hashes of its linked objects."""

    __slots__ = ("content_hash", "parts", "real")

    def __init__(self, content_hash, parts, real=None):
        self.content_hash = content_hash
        self.parts = parts
        self.real = real

    def __repr__(self):
        state = "materialised" if self.real is not None else "lazy"
        return f"<a.out {self.content_hash[:8]} {state}>"


class CachingMachine:
    """The standard four-verb surface, answered from the cache first.

    Sits *outermost* in a connection stack -- above retry / voting /
    fault injection -- so cached answers are the resilience-vetted
    verdicts and a cache hit models a purely local lookup (no network,
    no faults, no invocation counters).  Verbs that can fail
    semantically (assemble, link) cache their accept/reject verdict, so
    warm accept/reject probing is free too; transient target errors are
    never cached.
    """

    def __init__(self, machine, cache):
        self.inner = machine
        self.cache = cache
        self.fingerprint = target_fingerprint(machine)

    def clone_connection(self, index=0):
        """A parallel connection sharing this cache (the cache itself is
        thread-safe; one store serves the whole worker pool)."""
        return CachingMachine(self.inner.clone_connection(index), self.cache)

    # -- passthrough surface ------------------------------------------

    @property
    def target(self):
        return self.inner.target

    @property
    def toolchain(self):
        return self.inner.toolchain

    @property
    def stats(self):
        return self.inner.stats

    @property
    def policy(self):
        return getattr(self.inner, "policy", None)

    @property
    def fault_stats(self):
        return getattr(self.inner, "fault_stats", None)

    # -- the four remote verbs ----------------------------------------

    def compile_c(self, source, headers=None):
        headers = headers or {}
        content = _hash_text(source, *(f"{k}\n{v}" for k, v in sorted(headers.items())))
        cached = self.cache.get(self.fingerprint, "compile", content)
        if cached is not None and isinstance(cached.get("asm"), str):
            return cached["asm"]
        asm = self.inner.compile_c(source, headers)
        self.cache.put(self.fingerprint, "compile", content, {"asm": asm})
        return asm

    def assemble(self, asm_text):
        content = _hash_text(asm_text)
        cached = self.cache.get(self.fingerprint, "assemble", content)
        if cached is not None:
            if cached.get("ok"):
                return _LazyObject(content, asm_text)
            raise AssemblerError(str(cached.get("error", "rejected (cached)")))
        try:
            real = self.inner.assemble(asm_text)
        except AssemblerError as exc:
            self.cache.put(
                self.fingerprint, "assemble", content, {"ok": False, "error": str(exc)}
            )
            raise
        self.cache.put(self.fingerprint, "assemble", content, {"ok": True})
        return _LazyObject(content, asm_text, real=real)

    def assembles_ok(self, asm_text):
        try:
            self.assemble(asm_text)
        except AssemblerError:
            return False
        return True

    def link(self, objects):
        for handle in objects:
            if not isinstance(handle, _LazyObject):
                # A foreign handle (not assembled through this cache):
                # delegate untouched rather than guess its content.
                return self.inner.link(objects)
        content = _hash_text("link", *(obj.content_hash for obj in objects))
        cached = self.cache.get(self.fingerprint, "link", content)
        if cached is not None:
            if cached.get("ok"):
                return _LazyExecutable(content, list(objects))
            raise LinkerError(str(cached.get("error", "link failed (cached)")))
        try:
            real = self.inner.link([self._materialise(obj) for obj in objects])
        except LinkerError as exc:
            self.cache.put(
                self.fingerprint, "link", content, {"ok": False, "error": str(exc)}
            )
            raise
        self.cache.put(self.fingerprint, "link", content, {"ok": True})
        return _LazyExecutable(content, list(objects), real=real)

    def execute(self, executable):
        if not isinstance(executable, _LazyExecutable):
            return self.inner.execute(executable)
        cached = self.cache.get(self.fingerprint, "execute", executable.content_hash)
        if cached is not None and "output" in cached:
            return CachedExecResult(
                output=cached["output"],
                exit_code=cached.get("exit_code", 0),
                steps=cached.get("steps", 0),
                error=cached.get("error"),
            )
        result = self.inner.execute(self._materialise_exe(executable))
        self.cache.put(
            self.fingerprint,
            "execute",
            executable.content_hash,
            {
                "output": result.output,
                "exit_code": result.exit_code,
                "steps": result.steps,
                "error": result.error,
            },
        )
        return result

    # -- materialisation ----------------------------------------------

    def _materialise(self, obj):
        if obj.real is None:
            obj.real = self.inner.assemble(obj.asm_text)
        return obj.real

    def _materialise_exe(self, exe):
        if exe.real is None:
            exe.real = self.inner.link([self._materialise(obj) for obj in exe.parts])
        return exe.real

    # -- conveniences --------------------------------------------------

    def run_c(self, sources, headers=None):
        objects = [self.assemble(self.compile_c(src, headers)) for src in sources]
        return self.execute(self.link(objects))

    def run_asm(self, asm_texts):
        objects = [self.assemble(text) for text in asm_texts]
        return self.execute(self.link(objects))


def make_caching(machine, cache):
    """Wrap *machine* unless already caching or no cache was given."""
    if cache is None or isinstance(machine, CachingMachine):
        return machine
    return CachingMachine(machine, cache)


# -- on-disk inspection ------------------------------------------------


def cache_info(directory):
    """Inventory of a probe-cache directory, without mutating it.

    Walks every ``probes-<fingerprint>.jsonl`` shard and counts valid
    entries, corrupt lines, bytes and the per-verb breakdown -- the
    same numbers :meth:`ProbeCache.shard_stats` reports for a live
    store, derived here purely from disk so ``repro cache-info`` and
    the service ``/stats`` endpoint can describe a cache nobody
    currently holds open."""
    directory = pathlib.Path(directory)
    shards = []
    for path in sorted(directory.glob("probes-*.jsonl")):
        fingerprint = path.stem[len("probes-") :]
        entries = corrupt = 0
        by_verb = {}
        seen = set()
        try:
            lines = path.read_text().splitlines()
        except OSError:
            continue
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key = entry["k"]
                if not isinstance(key, str) or not isinstance(entry["v"], dict):
                    raise ValueError("malformed entry")
            except (ValueError, KeyError, TypeError):
                corrupt += 1
                continue
            if key in seen:  # append-only shards may repeat a key
                continue
            seen.add(key)
            entries += 1
            verb = entry.get("verb") or key.split(":")[1]
            by_verb[verb] = by_verb.get(verb, 0) + 1
        shards.append(
            {
                "fingerprint": fingerprint,
                "file": path.name,
                "bytes": path.stat().st_size if path.exists() else 0,
                "entries": entries,
                "corrupt_lines": corrupt,
                "by_verb": by_verb,
            }
        )
    gc_stats = None
    try:
        gc_stats = json.loads((directory / ProbeCache.GC_SIDECAR).read_text())
    except (OSError, ValueError):
        pass
    return {
        "directory": str(directory),
        "shards": shards,
        "total_entries": sum(s["entries"] for s in shards),
        "total_bytes": sum(s["bytes"] for s in shards),
        "total_corrupt_lines": sum(s["corrupt_lines"] for s in shards),
        "gc": gc_stats,
    }
