"""Process-parallel extraction engine.

The probe scheduler (PR 2) overlaps remote round-trips, but the two
CPU-bound phases -- graph matching and reverse interpretation -- are
serialised by the GIL.  This module fans them out over a
``ProcessPoolExecutor`` while keeping the discovered description
**bit-for-bit identical for any process count**:

- The corpus is partitioned into *shards* by ``opkey`` connectivity
  (union-find): two samples land in the same shard iff they share an
  extraction unknown, so shards never interact through the semantics
  table and can be solved in any order, in any process.
- Small shards are dispatched whole to worker processes; a shard too
  large to dispatch (most targets compile every sample through the same
  load/store moves, producing one giant component) is solved in the
  parent, with its inner best-first search parallelised instead: the
  joint-assignment *enumeration order* is a pure function of the
  candidate scores (see ``VectorEnumerator``), so waves of candidate
  vectors are checked concurrently and the committed assignment is the
  first passing vector in enumeration order -- exactly the one a
  sequential search finds.
- Results merge in shard-index order, followed by a cross-shard
  revision fixpoint: any sample that failed inside its shard but whose
  unknowns meanwhile appeared in the merged table (impossible for
  connectivity shards, by construction, but the seam is what makes the
  merge correct under any future partition policy) is re-solved with
  revision against the merged table.
- The global ``ri_budget`` is split across shards proportionally to
  shard size (remainder to the earliest shards); the fixpoint draws
  from the unspent remainder, and the split is accounted in the stats.
- ``hypotheses()`` candidate lists are memoised per-process by
  instruction signature shape (:func:`hypothesis_shape_key`) and, for
  parent-solved shards, speculatively enumerated on the pool a bounded
  lookahead ahead of their solve (:class:`HypothesisPrefetcher`).

At ``procs=1`` every stage runs inline through the same code paths, so
the single-process run is the plain in-process extraction it always
was -- identical output, same budget policy.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.discovery.dfg import build_dfg
from repro.discovery.graphmatch import match_binary
from repro.discovery.reverse_interp import (
    BudgetPool,
    ExtractionResult,
    HypothesisMemo,
    InlineEvaluator,
    ReverseInterpreter,
    _is_degenerate,
    first_passing_index,
    hypotheses,
    hypothesis_shape_key,
    opkey,
    sample_keys,
)

#: shards at most this large are dispatched whole to a worker; larger
#: ones are solved in the parent with wave-parallel candidate checking
DISPATCH_MAX_SHARD = 12

#: vectors checked inline before a solve escalates to pooled waves --
#: most solves find their assignment within the first few candidates,
#: and an IPC round-trip for those would cost more than it saves
INLINE_WAVE = 32

#: per-worker chunk of candidate vectors in one pooled wave
EVAL_CHUNK = 96


# -- statistics ---------------------------------------------------------------


@dataclass
class ExtractionStats:
    """Counters for the process-parallel extraction of one target."""

    procs: int = 1
    memo_enabled: bool = True
    shards: int = 0
    shard_sizes: list = field(default_factory=list)
    dispatched_shards: int = 0
    inline_shards: int = 0
    graph_tasks: int = 0
    hyp_tasks: int = 0
    eval_tasks: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    budget_total: int = 0
    budget_spent: int = 0
    fixpoint_retries: int = 0

    @property
    def budget_unspent(self):
        return max(0, self.budget_total - self.budget_spent)

    @property
    def memo_hit_rate(self):
        looked = self.memo_hits + self.memo_misses
        return self.memo_hits / looked if looked else 0.0

    def snapshot(self):
        return {
            "procs": self.procs,
            "memo_enabled": self.memo_enabled,
            "shards": self.shards,
            "shard_sizes": list(self.shard_sizes),
            "dispatched_shards": self.dispatched_shards,
            "inline_shards": self.inline_shards,
            "graph_tasks": self.graph_tasks,
            "hyp_tasks": self.hyp_tasks,
            "eval_tasks": self.eval_tasks,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_hit_rate": round(self.memo_hit_rate, 4),
            "budget_total": self.budget_total,
            "budget_spent": self.budget_spent,
            "budget_unspent": self.budget_unspent,
            "fixpoint_retries": self.fixpoint_retries,
        }


# -- sharding -----------------------------------------------------------------


def partition_shards(samples):
    """Group samples into opkey-connected components (union-find).

    Samples sharing any extraction unknown must see each other's
    commitments and revisions, so they stay together; disjoint groups
    are independent by construction.  Shards are returned ordered by
    their first sample's corpus position -- a pure function of the
    corpus, identical for every process count."""
    parent = {}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    roots = []
    for position, sample in enumerate(samples):
        mine = ("sample", position)
        parent[mine] = mine
        roots.append(mine)
        for key in sample_keys(sample):
            kid = ("key", key)
            if kid not in parent:
                parent[kid] = kid
            union(mine, kid)

    grouped = {}
    first_position = {}
    for position, sample in enumerate(samples):
        root = find(roots[position])
        if root not in grouped:
            grouped[root] = []
            first_position[root] = position
        grouped[root].append(sample)
    return [grouped[root] for root in sorted(grouped, key=first_position.get)]


def split_budget(total, sizes):
    """Deterministic proportional split of the global interpretation
    budget: ``total * size_i // sum(sizes)`` each, with the rounding
    remainder handed out one unit at a time to the earliest shards."""
    weight = sum(sizes)
    if not sizes or weight == 0:
        return []
    shares = [total * size // weight for size in sizes]
    remainder = total - sum(shares)
    for i in range(len(shares)):
        if remainder <= 0:
            break
        shares[i] += 1
        remainder -= 1
    return shares


# -- worker-process plumbing --------------------------------------------------


@dataclass
class WorkerContext:
    """Everything the pure per-shard computations need, installed once
    per process (inherited over ``fork``, or unpickled by the spawn
    initializer).  Graph roles are *not* frozen here -- they are
    computed after the pool may already exist -- so tasks that need
    them carry them in their payload."""

    samples_by_name: dict
    addr_map: object
    bits: int
    use_likelihood: bool = True
    memo_enabled: bool = True


@dataclass
class ShardOutcome:
    """A solved shard, reduced to picklable payloads."""

    index: int
    semantics: list = field(default_factory=list)  # OpSemantics payloads
    solved: list = field(default_factory=list)
    failed: list = field(default_factory=list)
    tried: int = 0
    spent: int = 0
    memo_hits: int = 0
    memo_misses: int = 0


class _SampleSet:
    """The slice of the corpus a shard solver sees (duck-types the
    ``Corpus`` surface the reverse interpreter uses)."""

    def __init__(self, samples):
        self.samples = list(samples)

    def usable_samples(self, kind=None):
        return [
            s
            for s in self.samples
            if s.usable and (kind is None or s.kind == kind)
        ]


_CTX = None  # WorkerContext, in workers and in the parent (inline path)
_MEMO = None  # per-process HypothesisMemo, when enabled


def _install_context(ctx):
    global _CTX, _MEMO
    _CTX = ctx
    _MEMO = HypothesisMemo(ctx.bits) if ctx.memo_enabled else None


def _install_context_bytes(payload):
    _install_context(pickle.loads(payload))


def _memo_counters():
    if _MEMO is None:
        return 0, 0
    return _MEMO.hits, _MEMO.misses


def _task_graph_roles(names):
    """Graph-match a batch of samples; pure per sample."""
    ctx = _CTX
    out = []
    for name in names:
        sample = ctx.samples_by_name[name]
        graph = build_dfg(sample, ctx.addr_map)
        matched = match_binary(sample, graph)
        for index, role in matched.roles.items():
            out.append((name, index, role))
    return out


def _task_hypotheses(jobs):
    """Enumerate candidate lists for a batch of (sample, index, role)
    jobs; returns (shape_key, candidates) pairs for the parent memo."""
    ctx = _CTX
    out = []
    for name, index, role in jobs:
        sample = ctx.samples_by_name[name]
        if _MEMO is not None:
            cands = _MEMO.lookup(sample, index, role)
            key = _MEMO.key(sample, index, role)
        else:
            key = hypothesis_shape_key(sample, index, role, ctx.bits)
            cands = hypotheses(sample, index, role)
        out.append((key, cands))
    return out


def _task_first_passing(name, sem, extra_effects, solved_names, assignments):
    """Check one chunk of candidate vectors; returns the chunk-local
    index of the first passing assignment, or None."""
    ctx = _CTX
    sample = ctx.samples_by_name[name]
    solved = [ctx.samples_by_name[n] for n in solved_names]
    return first_passing_index(
        sample, sem, extra_effects, solved, assignments, ctx.addr_map, ctx.bits
    )


def _run_shard(index, names, budget, graph_roles, memo, evaluator, prefetch=None):
    """Solve one shard with a plain in-process reverse interpreter;
    the single implementation runs identically in the parent (inline
    shards, ``procs=1``) and inside a dispatched worker."""
    ctx = _CTX
    samples = [ctx.samples_by_name[n] for n in names]
    pool = BudgetPool(budget)
    interpreter = ReverseInterpreter(
        _SampleSet(samples),
        ctx.addr_map,
        ctx.bits,
        graph_roles=graph_roles,
        budget=budget,
        use_likelihood=ctx.use_likelihood,
        memo=memo,
        evaluator=evaluator,
        budget_pool=pool,
        samples=samples,
        discard_failed=False,
        prefetch=prefetch,
    )
    result = interpreter.extract()
    return result, pool


def _task_solve_shard(index, names, budget, graph_roles):
    hits0, misses0 = _memo_counters()
    result, pool = _run_shard(index, names, budget, graph_roles, _MEMO, None)
    hits1, misses1 = _memo_counters()
    return ShardOutcome(
        index=index,
        semantics=[result.semantics[k] for k in result.semantics],
        solved=result.solved,
        failed=result.failed,
        tried=result.interpretations_tried,
        spent=pool.spent,
        memo_hits=hits1 - hits0,
        memo_misses=misses1 - misses0,
    )


# -- the pool and the pooled evaluator ----------------------------------------


class ExtractPool:
    """A lazily created process pool.  Prefers the ``fork`` start
    method so workers inherit the installed :class:`WorkerContext` (and
    the warm memo) without pickling; falls back to an explicit spawn
    initializer elsewhere."""

    def __init__(self, procs):
        self.procs = procs
        self._executor = None

    def _ensure(self):
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                mp_ctx = multiprocessing.get_context("fork")
                initializer, initargs = None, ()
            else:
                mp_ctx = multiprocessing.get_context()
                initializer = _install_context_bytes
                initargs = (pickle.dumps(_CTX),)
            # Workers only run pure functions over the inherited
            # context; the interpreter's fork-with-threads caution does
            # not apply to them.
            warnings.filterwarnings(
                "ignore",
                message=".*use of fork\\(\\) may lead to deadlocks.*",
                category=DeprecationWarning,
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.procs,
                mp_context=mp_ctx,
                initializer=initializer,
                initargs=initargs,
            )
        return self._executor

    def submit(self, fn, *args):
        return self._ensure().submit(fn, *args)

    def run_ordered(self, fn, payloads):
        """Submit one task per payload; results in payload order."""
        futures = [self.submit(fn, *payload) for payload in payloads]
        return [future.result() for future in futures]

    def close(self):
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def _split_even(items, parts):
    """Contiguous split into at most *parts* non-empty batches."""
    if not items:
        return []
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    batches, start = [], 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        batches.append(items[start:end])
        start = end
    return batches


class PooledEvaluator:
    """Checks candidate-vector waves across the process pool.  The
    first wave of a solve stays inline (most solves finish there); a
    solve that outlives it escalates to ``procs``-wide waves.  Venue
    never affects the outcome: the winner is the first passing vector
    in enumeration order, wherever each chunk was checked."""

    def __init__(self, pool, addr_map, bits, stats, chunk=None, inline_wave=None):
        self.pool = pool
        self.addr_map = addr_map
        self.bits = bits
        self.stats = stats
        self.chunk = EVAL_CHUNK if chunk is None else chunk
        self.inline_wave = INLINE_WAVE if inline_wave is None else inline_wave

    def next_wave(self, consumed):
        if consumed < self.inline_wave:
            return self.inline_wave
        return self.chunk * self.pool.procs

    def first_passing(self, sample, sem, extra_effects, solved_samples, assignments):
        if len(assignments) <= self.inline_wave:
            return first_passing_index(
                sample, sem, extra_effects, solved_samples, assignments,
                self.addr_map, self.bits,
            )
        solved_names = [s.name for s in solved_samples]
        chunks = _split_even(assignments, self.pool.procs)
        futures = [
            self.pool.submit(
                _task_first_passing,
                sample.name, sem, extra_effects, solved_names, chunk,
            )
            for chunk in chunks
        ]
        self.stats.eval_tasks += len(futures)
        offset = 0
        hit = None
        # Every chunk is awaited (cheap: they run concurrently), and the
        # earliest chunk with a pass wins -- later chunks' passes are
        # vectors the sequential search would never have reached.
        for chunk, future in zip(chunks, futures):
            local = future.result()
            if hit is None and local is not None:
                hit = offset + local
            offset += len(chunk)
        return hit


# -- speculative hypothesis prefetch ------------------------------------------

#: how many upcoming pending samples to enumerate hypotheses for ahead
#: of their solve; bounds the speculative waste when an earlier solve
#: commits a key the lookahead already enqueued work for
PREFETCH_WINDOW = 8


def _first_instance_of(sample, key):
    for i, instr in enumerate(sample.region):
        if instr.mnemonic and opkey(instr) == key:
            return i
    return None


class _PrefetchedMemo:
    """The memo facade the inline shard solver sees: hits serve from the
    shared table, misses first collect an in-flight prefetch future, and
    only then fall back to inline enumeration.  Every path returns the
    exact :func:`hypotheses` result, so this is invisible to the search."""

    def __init__(self, memo, prefetcher):
        self.base = memo
        self.prefetcher = prefetcher

    def key(self, sample, index, role):
        return self.base.key(sample, index, role)

    def lookup(self, sample, index, role):
        key = self.base.key(sample, index, role)
        cached = self.base.table.get(key)
        if cached is not None:
            self.base.hits += 1
            return cached
        cands = self.prefetcher.resolve(key)
        if cands is not None:
            # The enumeration work happened, in a worker: a miss.
            self.base.seed(key, cands)
            return cands
        return self.base.lookup(sample, index, role)

    def seed(self, key, cands):
        self.base.seed(key, cands)


class HypothesisPrefetcher:
    """Bounded-lookahead speculative hypothesis enumeration.

    Before each solve, the interpreter hands over the upcoming pending
    samples; shapes for their still-unknown keys are enqueued on the
    pool so the lists are (being) computed by the time their solve asks.
    The issued set is a pure function of the deterministic solve order
    and semantics state -- and prefetching only ever warms the memo --
    so results are bit-for-bit those of the serial path."""

    window = PREFETCH_WINDOW

    def __init__(self, pool, memo, graph_roles, use_likelihood, bits, stats):
        self.pool = pool
        self.base = memo
        self.memo = _PrefetchedMemo(memo, self)
        self.graph_roles = graph_roles
        self.use_likelihood = use_likelihood
        self.bits = bits
        self.stats = stats
        self.futures = {}

    def __call__(self, upcoming, result, revision=False):
        for sample in upcoming[: self.window]:
            for key in sample_keys(sample):
                if key in result.semantics and not revision:
                    continue
                index = _first_instance_of(sample, key)
                if index is None:
                    continue
                role = (
                    self.graph_roles.get((sample.name, index))
                    if self.use_likelihood
                    else None
                )
                shape = hypothesis_shape_key(sample, index, role, self.bits)
                if shape in self.base.table or shape in self.futures:
                    continue
                self.futures[shape] = self.pool.submit(
                    _task_hypotheses, [(sample.name, index, role)]
                )
                self.stats.hyp_tasks += 1

    def resolve(self, shape):
        future = self.futures.pop(shape, None)
        if future is None:
            return None
        [(_shape, cands)] = future.result()
        return cands


# -- the engine ---------------------------------------------------------------


class ExtractionEngine:
    """Orchestrates the two CPU-bound phases for one discovery run."""

    RI_KINDS = ReverseInterpreter.RI_KINDS

    def __init__(self, procs=1, memo=True):
        self.procs = max(1, int(procs))
        self.memo_enabled = bool(memo)
        self.pool = ExtractPool(self.procs) if self.procs > 1 else None
        self.stats = ExtractionStats(procs=self.procs, memo_enabled=self.memo_enabled)
        self._fixpoint_spent = 0
        self._prepared = False
        self.addr_map = None
        self.bits = None
        self.use_likelihood = True
        self._samples = []

    # -- lifecycle -----------------------------------------------------

    def prepare(self, corpus, addr_map, bits, use_likelihood=True):
        """Install the worker context.  Must happen before the first
        fan-out so forked workers inherit the fully preprocessed
        samples; graph roles, computed later, travel per task."""
        self.addr_map = addr_map
        self.bits = bits
        self.use_likelihood = use_likelihood
        self._samples = [
            s
            for s in corpus.usable_samples()
            if s.kind in self.RI_KINDS and getattr(s, "info", None) is not None
        ]
        _install_context(
            WorkerContext(
                samples_by_name={s.name: s for s in self._samples},
                addr_map=addr_map,
                bits=bits,
                use_likelihood=use_likelihood,
                memo_enabled=self.memo_enabled,
            )
        )
        self._prepared = True

    def close(self):
        if self.pool is not None:
            self.pool.close()

    # -- graph matching ------------------------------------------------

    def graph_roles(self):
        """Per-instruction roles for every eligible sample, fanned over
        the pool when ``procs > 1``; merge order (sample order, then
        match order) is venue-independent."""
        names = [s.name for s in self._samples]
        batches = _split_even(names, self.procs)
        if self.pool is not None and len(batches) > 1:
            results = self.pool.run_ordered(
                _task_graph_roles, [(batch,) for batch in batches]
            )
        else:
            results = [_task_graph_roles(batch) for batch in batches]
        self.stats.graph_tasks += len(batches)
        roles = {}
        for result in results:
            for name, index, role in result:
                roles[(name, index)] = role
        # Canonical (name, index) order: match_binary's per-sample role
        # dict iterates in hash order, which varies across interpreter
        # processes -- consumers look roles up by key, but this dict
        # rides the checkpoint, where insertion order is bytes.
        return dict(sorted(roles.items()))

    # -- reverse interpretation ----------------------------------------

    def extract(self, graph_roles, budget, ri_samples=None, completed=None, on_shard=None):
        """Shard, solve, merge, fixpoint.  Returns the merged
        :class:`ExtractionResult`; counters land in ``self.stats``.

        *completed* maps shard index -> :class:`ShardOutcome` from a
        resumed run's checkpoint: those shards are not re-solved, their
        recorded outcomes join the merge directly.  *on_shard* is called
        with each **newly** solved outcome (in shard-index order) --
        the driver's per-shard durable commit hook.  Shard budgets are
        seeded per index, so the merge cannot tell replay from solve.
        """
        samples = list(ri_samples) if ri_samples is not None else list(self._samples)
        by_name = {s.name: s for s in samples}
        shards = partition_shards(samples)
        sizes = [len(shard) for shard in shards]
        shares = split_budget(budget, sizes)
        self.stats.shards = len(shards)
        self.stats.shard_sizes = sizes
        self.stats.budget_total = budget

        outcomes = dict(completed) if completed else {}
        memo = _MEMO  # the parent-process memo (None when disabled)
        dispatch, inline = [], []
        for index, (shard, share) in enumerate(zip(shards, shares)):
            if index in outcomes:
                continue
            names = [s.name for s in shard]
            member = set(names)
            roles = {
                (name, i): role
                for (name, i), role in graph_roles.items()
                if name in member
            }
            task = (index, names, share, roles)
            if self.pool is not None and len(names) <= DISPATCH_MAX_SHARD:
                dispatch.append(task)
            else:
                inline.append(task)
        self.stats.dispatched_shards = len(dispatch)
        self.stats.inline_shards = len(inline)

        futures = {}
        if dispatch:
            for task in dispatch:
                futures[task[0]] = self.pool.submit(_task_solve_shard, *task)

        for index, names, share, roles in inline:
            evaluator = self._parent_evaluator()
            prefetch = self._make_prefetcher(memo, roles)
            hits0, misses0 = _memo_counters()
            result, shard_pool = _run_shard(
                index, names, share, roles,
                prefetch.memo if prefetch is not None else memo,
                evaluator,
                prefetch,
            )
            hits1, misses1 = _memo_counters()
            outcomes[index] = ShardOutcome(
                index=index,
                semantics=[result.semantics[k] for k in result.semantics],
                solved=result.solved,
                failed=result.failed,
                tried=result.interpretations_tried,
                spent=shard_pool.spent,
                memo_hits=hits1 - hits0,
                memo_misses=misses1 - misses0,
            )
            if on_shard is not None:
                on_shard(outcomes[index])
        for index in sorted(futures):
            outcomes[index] = futures[index].result()
            if on_shard is not None:
                on_shard(outcomes[index])

        # Deterministic ordered merge: shard-index order, regardless of
        # completion order or venue.
        merged = ExtractionResult()
        spent = 0
        for index in sorted(outcomes):
            outcome = outcomes[index]
            for op_sem in outcome.semantics:
                if op_sem.key not in merged.semantics:
                    merged.semantics[op_sem.key] = op_sem
            merged.solved.extend(outcome.solved)
            merged.interpretations_tried += outcome.tried
            spent += outcome.spent
            self.stats.memo_hits += outcome.memo_hits
            self.stats.memo_misses += outcome.memo_misses

        self._fixpoint(merged, outcomes, by_name, budget - spent, graph_roles, memo)
        self.stats.budget_spent = spent + self._fixpoint_spent
        return merged

    def _parent_evaluator(self):
        if self.pool is not None:
            return PooledEvaluator(self.pool, self.addr_map, self.bits, self.stats)
        return InlineEvaluator(self.addr_map, self.bits)

    def _make_prefetcher(self, memo, roles):
        if self.pool is None or memo is None:
            return None
        return HypothesisPrefetcher(
            self.pool, memo, roles, self.use_likelihood, self.bits, self.stats
        )

    def _fixpoint(self, merged, outcomes, by_name, leftover, graph_roles, memo):
        """Cross-shard revision fixpoint.  A sample that failed inside
        its shard is retried against the merged table iff the merge
        brought in keys its shard could not see -- never the case for
        connectivity shards, whose keys are closed by construction, but
        this is the seam that keeps the merge correct under any
        partition policy."""
        self._fixpoint_spent = 0
        fix_pool = BudgetPool(max(0, leftover))
        retry, final_failed = [], []
        for index in sorted(outcomes):
            outcome = outcomes[index]
            shard_keys = {op_sem.key for op_sem in outcome.semantics}
            for name in outcome.failed:
                sample = by_name[name]
                foreign = [
                    k
                    for k in sample_keys(sample)
                    if k in merged.semantics and k not in shard_keys
                ]
                (retry if foreign else final_failed).append(sample)
        if retry:
            interpreter = ReverseInterpreter(
                _SampleSet(list(by_name.values())),
                self.addr_map,
                self.bits,
                graph_roles=graph_roles,
                budget=fix_pool.total,
                use_likelihood=self.use_likelihood,
                memo=memo,
                evaluator=self._parent_evaluator(),
                budget_pool=fix_pool,
                discard_failed=False,
            )
            progress = True
            while retry and progress:
                progress = False
                still = []
                for sample in retry:
                    if not _is_degenerate(sample) and interpreter._solve_with_revision(
                        sample, merged
                    ):
                        merged.solved.append(sample.name)
                        self.stats.fixpoint_retries += 1
                        progress = True
                    else:
                        still.append(sample)
                retry = still
            final_failed.extend(retry)
            self._fixpoint_spent = fix_pool.spent
        for sample in final_failed:
            merged.failed.append(sample.name)
            sample.discard("reverse interpretation found no consistent semantics")
