"""Unit and property tests for word-precision arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import wordops

WORDS = st.integers(min_value=-(2**31), max_value=2**31 - 1)
BITS = st.sampled_from([8, 16, 32, 64])


def test_mask_truncates():
    assert wordops.mask(0x1_0000_0001, 32) == 1
    assert wordops.mask(-1, 32) == 0xFFFFFFFF


def test_to_signed_round_trip():
    assert wordops.to_signed(0xFFFFFFFF, 32) == -1
    assert wordops.to_signed(0x7FFFFFFF, 32) == 2**31 - 1
    assert wordops.to_signed(0x80000000, 32) == -(2**31)


@pytest.mark.parametrize(
    "a,b,q,r",
    [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
        (0, 5, 0, 0),
    ],
)
def test_c_division_truncates_toward_zero(a, b, q, r):
    assert wordops.c_div(a, b) == q
    assert wordops.c_mod(a, b) == r


@given(a=WORDS, b=WORDS)
def test_c_div_mod_identity(a, b):
    if b == 0:
        return
    assert wordops.c_div(a, b) * b + wordops.c_mod(a, b) == a


@given(a=WORDS, b=WORDS, bits=BITS)
def test_add_sub_inverse(a, b, bits):
    s = wordops.add(a, b, bits)
    assert wordops.sub(s, b, bits) == wordops.mask(a, bits)


@given(a=WORDS, bits=BITS)
def test_neg_is_sub_from_zero(a, bits):
    assert wordops.neg(a, bits) == wordops.sub(0, a, bits)


@given(a=WORDS, bits=BITS)
def test_not_is_involution(a, bits):
    assert wordops.bit_not(wordops.bit_not(a, bits), bits) == wordops.mask(a, bits)


@given(a=WORDS, n=st.integers(min_value=0, max_value=31))
def test_shifts_match_python_semantics(a, n):
    assert wordops.shl(a, n, 32) == wordops.mask(a << n, 32)
    signed = wordops.to_signed(a, 32)
    assert wordops.to_signed(wordops.shr_arith(a, n, 32), 32) == signed >> n


@given(a=WORDS, b=WORDS)
def test_mul_matches_signed_product(a, b):
    assert wordops.to_signed(wordops.mul(a, b, 64), 64) == a * b


@given(a=WORDS, b=WORDS)
def test_sdiv_smod_word_identity(a, b):
    if wordops.mask(b, 32) == 0:
        return
    q = wordops.to_signed(wordops.sdiv(a, b, 32), 32)
    r = wordops.to_signed(wordops.smod(a, b, 32), 32)
    assert q * wordops.to_signed(b, 32) + r == wordops.to_signed(a, 32)
