"""E10/E11 (paper Figures 10/11): data-flow graphs and graph matching."""

import pytest

from benchmarks.conftest import TARGETS, full_report

from repro.discovery.dfg import build_dfg
from repro.discovery.graphmatch import match_binary


@pytest.mark.parametrize("target", TARGETS)
def test_build_all_dfgs(benchmark, target):
    report = full_report(target)
    samples = [
        s
        for s in report.corpus.usable_samples()
        if s.kind in ("binary", "unary", "literal", "copy")
    ]

    def run():
        return [build_dfg(s, report.addr_map) for s in samples]

    graphs = benchmark(run)
    assert len(graphs) == len(samples)
    benchmark.extra_info["graphs"] = len(graphs)


@pytest.mark.parametrize("target", TARGETS)
def test_graph_matching_roles(benchmark, target):
    report = full_report(target)
    samples = [
        (s, build_dfg(s, report.addr_map))
        for s in report.corpus.usable_samples()
        if s.kind == "binary"
    ]

    def run():
        matched = 0
        for sample, graph in samples:
            result = match_binary(sample, graph)
            if result.p_node is not None:
                matched += 1
        return matched

    matched = benchmark(run)
    benchmark.extra_info["matched"] = matched
    benchmark.extra_info["samples"] = len(samples)
    assert matched >= len(samples) // 2


def test_dot_rendering(benchmark):
    report = full_report("mips")
    sample = next(
        s for s in report.corpus.usable_samples() if s.name == "int_mul_a_bOPc"
    )
    graph = build_dfg(sample, report.addr_map)

    dot = benchmark(graph.to_dot, "mul")
    assert "digraph" in dot
