"""RemoteProbeCache unit coverage: the ProbeCache surface over HTTP,
counter parity, batched round trips (whole-shard prefetch + buffered
puts), and the degrade-then-recover transport story (a dead service
must cost misses, not hangs or crashes -- and a revived one must get
its workers back without a worker restart)."""

import socket
import threading
import time

import pytest

from repro.service.app import DiscoveryService
from repro.service.cache_client import (
    FLUSH_THRESHOLD,
    MAX_TRANSPORT_FAILURES,
    RemoteProbeCache,
)
from repro.service.httpd import serve

_QUIET = lambda *args, **kwargs: None  # noqa: E731


@pytest.fixture()
def cache_service(tmp_path):
    """A service with only its cache endpoints in play: HTTP listener
    up, fleet loop deliberately not started."""
    service = DiscoveryService(tmp_path, echo=_QUIET)
    server = serve(service, port=0)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    yield service, server
    server.shutdown()
    server.server_close()
    service.cache.close()
    thread.join(timeout=5.0)


def test_roundtrip_and_counters(cache_service):
    service, server = cache_service
    remote = RemoteProbeCache(server.url)
    payload = {"stdout": "7\n", "returncode": 0}

    assert remote.get("fp16charfp16char", "execute", "abc123") is None
    assert remote.stats.misses == 1

    remote.put("fp16charfp16char", "execute", "abc123", payload)
    # puts buffer into the pending overlay: our own write reads back
    # immediately (and counts a hit) even before any flush
    assert remote.get("fp16charfp16char", "execute", "abc123") == payload
    assert remote.stats.hits == 1
    assert remote.stats.hits_by_verb == {"execute": 1}
    assert remote.stats.misses_by_verb == {"execute": 1}

    # the flush moves it into the service's own store, where a second
    # client (and the service process itself) sees it
    remote.flush()
    assert remote.stats.writes == 1
    other = RemoteProbeCache(server.url)
    assert other.get("fp16charfp16char", "execute", "abc123") == payload
    assert service.cache.get("fp16charfp16char", "execute", "abc123") == payload
    remote.close()
    other.close()


def test_close_flushes_pending(cache_service):
    service, server = cache_service
    remote = RemoteProbeCache(server.url)
    remote.put("fp16charfp16char", "execute", "pend01", {"n": 1})
    assert service.cache.get("fp16charfp16char", "execute", "pend01") is None
    remote.close()
    assert service.cache.get("fp16charfp16char", "execute", "pend01") == {"n": 1}


def test_flush_threshold_triggers_batch_put(cache_service):
    service, server = cache_service
    remote = RemoteProbeCache(server.url)
    for index in range(FLUSH_THRESHOLD):
        remote.put("fp16charfp16char", "execute", f"h{index:04d}", {"n": index})
    # the threshold-crossing put flushed without an explicit flush()
    assert remote.stats.writes == FLUSH_THRESHOLD
    assert service.cache.get("fp16charfp16char", "execute", "h0000") == {"n": 0}
    remote.close()


def test_prefetch_answers_warm_lookups_in_one_round_trip(cache_service):
    service, server = cache_service
    for index in range(5):
        service.cache.put("fp16charfp16char", "execute", f"w{index}", {"n": index})

    remote = RemoteProbeCache(server.url)
    for index in range(5):
        assert remote.get("fp16charfp16char", "execute", f"w{index}") == {
            "n": index
        }
    # one whole-shard POST served all five hits
    assert remote.round_trips == 1
    assert remote.stats.hits == 5
    # and the warm read must not move the service's miss/write counters
    # (a prefetch is not a probe answer)
    assert service.cache.stats.misses == 0
    assert service.cache.stats.writes == 5
    remote.close()


def test_verbs_share_nothing(cache_service):
    _, server = cache_service
    remote = RemoteProbeCache(server.url)
    remote.put("fp16charfp16char", "compile", "samehash", {"asm": ".text"})
    assert remote.get("fp16charfp16char", "execute", "samehash") is None
    assert remote.get("fp16charfp16char", "compile", "samehash") == {
        "asm": ".text"
    }
    remote.close()


def test_describe_names_the_endpoint(cache_service):
    _, server = cache_service
    remote = RemoteProbeCache(server.url)
    assert server.url in remote.describe()
    remote.close()


def _dead_port():
    """A localhost port with nothing listening on it."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_dead_service_degrades_to_misses_then_goes_quiet():
    remote = RemoteProbeCache(f"http://127.0.0.1:{_dead_port()}", timeout=0.5)
    for index in range(MAX_TRANSPORT_FAILURES + 2):
        assert remote.get("fp16charfp16char", "execute", f"h{index}") is None
        remote.put("fp16charfp16char", "execute", f"h{index}", {"n": index})
    assert remote._disabled
    assert "cooling down" in remote.describe()
    # every lookup was a miss, none raised, none wrote
    assert remote.stats.misses == MAX_TRANSPORT_FAILURES + 2
    assert remote.stats.writes == 0
    remote.close()


def test_cooldown_reenables_against_a_revived_service(tmp_path):
    """The PR-7 client disabled itself forever after three transport
    failures; the cooldown probe must bring a worker back once the
    service returns (e.g. after a drain/restart)."""
    port = _dead_port()
    remote = RemoteProbeCache(f"http://127.0.0.1:{port}", timeout=0.5)
    for index in range(MAX_TRANSPORT_FAILURES):
        remote.get("fp16charfp16char", "execute", f"h{index}")
    assert remote._disabled

    # revive the service on the very port the client gave up on
    service = DiscoveryService(tmp_path, echo=_QUIET)
    service.cache.put("fp16charfp16char", "execute", "warm01", {"n": 1})
    server = serve(service, host="127.0.0.1", port=port)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        # poll past the cooldown: the half-open probe must re-enable
        deadline = time.monotonic() + 30.0
        hit = None
        while time.monotonic() < deadline:
            hit = remote.get("fp16charfp16char", "execute", "warm01")
            if hit is not None:
                break
            time.sleep(0.25)
        assert hit == {"n": 1}
        assert not remote._disabled
        assert remote.reenabled >= 1
    finally:
        remote.close()
        server.shutdown()
        server.server_close()
        service.cache.close()
        thread.join(timeout=5.0)


def test_rejects_non_http_urls():
    with pytest.raises(ValueError, match="http"):
        RemoteProbeCache("ftp://127.0.0.1:9999")
