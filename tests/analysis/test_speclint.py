"""speclint over the six real discovered descriptions.

The acceptance bar: every spec the discovery unit actually produces
lints with ZERO errors.  Warnings are allowed but pinned, so a change
that introduces new noise (or silently fixes a known ambiguity) shows
up here.
"""

import json

from repro.analysis import lint_spec
from repro.analysis.formats import render
from tests.discovery.conftest import TARGETS, discovery_report


class TestRealSpecsClean:
    def test_zero_errors(self, report):
        diags = lint_spec(report.spec)
        assert diags.errors == [], "\n".join(d.render() for d in diags.errors)

    def test_known_warning_profile(self):
        """Every target lints warning-clean.  The historical MIPS cost
        ties (register rule vs unrestricted immediate rule, SPEC033) are
        resolved by the deterministic tie-break in
        ``Synthesizer._break_cost_ties``; this pin keeps them resolved."""
        expected = {
            "x86": [],
            "mips": [],
            "sparc": [],
            "alpha": [],
            "vax": [],
            "m68k": [],
        }
        for target in TARGETS:
            diags = lint_spec(discovery_report(target).spec)
            assert diags.codes() == expected[target], target

    def test_mips_tie_break_is_biased_not_reordered(self):
        """The tie-break adds a +1 cost bias to the register rule; it
        must not touch the immediate rule or the instruction sequences
        (emitted code is selected cost-independently for constants)."""
        spec = discovery_report("mips").spec
        biased = [
            op
            for op in sorted(set(spec.rules) & set(spec.imm_rules))
            if getattr(spec.rules[op], "cost_bias", 0)
        ]
        assert biased, "expected at least one biased MIPS register rule"
        for op in biased:
            assert getattr(spec.imm_rules[op], "cost_bias", 0) == 0


class TestDriverWiring:
    def test_lint_phase_runs(self, report):
        assert report.diagnostics is not None
        assert "spec lint" in [t.name for t in report.timings]

    def test_diagnostics_attached_to_spec(self, report):
        assert report.spec.diagnostics == report.diagnostics.to_dicts()

    def test_summary_carries_lint_counts(self, report):
        summary = report.summary()
        assert summary["lint_errors"] == 0
        assert summary["lint_warnings"] == len(report.diagnostics.warnings)


class TestSpecSummary:
    def test_addressing_modes_and_diagnostics_sections(self, report):
        summary = report.spec.summary()
        assert "addressing_modes" in summary
        assert "imm_ranges" in summary
        diag = summary["diagnostics"]
        assert diag["counts"].get("error", 0) == 0
        assert diag["entries"] == report.spec.diagnostics
        json.dumps(summary)  # everything must be JSON-serialisable

    def test_probed_imm_ranges_recorded(self):
        """Targets with a range-restricted immediate rule expose the
        probed per-instruction range in the spec table."""
        restricted = [
            target
            for target in TARGETS
            if any(
                rule.imm_range is not None
                for rule in discovery_report(target).spec.imm_rules.values()
            )
        ]
        assert restricted, "no target discovered a restricted immediate rule"
        for target in restricted:
            spec = discovery_report(target).spec
            assert spec.imm_ranges, target
            for (mnemonic, operand), (lo, hi) in spec.imm_ranges.items():
                assert isinstance(mnemonic, str) and isinstance(operand, int)
                assert lo <= hi

    def test_chain_rule_modes_declared(self, report):
        """Every addressing mode a chain rule mentions has declared
        semantics (the gap speclint's SPEC043 exists to catch)."""
        import re

        spec = report.spec
        for chain in spec.chain_rules:
            for mode in re.findall(r"AddrMode\[([^\]]+)\]", chain):
                assert mode in spec.addressing_modes, (report.target, mode)


class TestRenderFormats:
    def test_text_json_sarif(self, report):
        diags = lint_spec(report.spec)
        text = render(diags, "text")
        assert "finding" in text
        payload = json.loads(render(diags, "json"))
        assert payload["counts"]["error"] == 0
        sarif = json.loads(render(diags, "sarif"))
        assert sarif["version"] == "2.1.0"
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        assert any(rule["id"] == "SPEC001" for rule in rules)
        assert len(sarif["runs"][0]["results"]) == len(diags)


class TestModelAssistedLint:
    """lint_spec(spec, model=...) swaps the def/use oracle from the
    semantics-table merge to exact symbolic profiles; both modes must
    agree that real discovered specs are clean, and the symbolic
    profiles must match the targets' documented operand behavior."""

    def test_pristine_specs_clean_in_both_modes(self, report):
        from repro.analysis.verify import build_model

        plain = lint_spec(report.spec)
        model = lint_spec(report.spec, model=build_model(report.spec.target))
        assert not [d for d in plain if d.severity == "error"]
        assert not [d for d in model if d.severity == "error"]

    def test_symbolic_profiles_are_exact(self):
        from repro.analysis.verify import build_model, template_def_use
        from repro.discovery.asmmodel import DInstr, DMem, Slot

        x86 = build_model("x86")
        uses, defs, ireads, iwrites = template_def_use(
            x86, DInstr("addl", [Slot("right"), Slot("result")])
        )
        assert (uses, defs) == ({0, 1}, {1})  # two-address add
        uses, defs, _r, _w = template_def_use(
            x86, DInstr("cmpl", [Slot("left"), Slot("right")])
        )
        assert (uses, defs) == ({0, 1}, set())  # compare writes only cc

        mips = build_model("mips")
        uses, defs, _r, _w = template_def_use(
            mips, DInstr("lw", [Slot("dest"), DMem("paren", "$sp", 112)])
        )
        assert (uses, defs) == ({1}, {0})  # load: mem in, reg out
        uses, defs, _r, _w = template_def_use(
            mips, DInstr("addu", [Slot("result"), Slot("left"), Slot("right")])
        )
        assert (uses, defs) == ({1, 2}, {0})  # three-address add

    def test_control_flow_falls_back_to_table(self):
        from repro.analysis.verify import build_model, template_def_use
        from repro.discovery.asmmodel import DInstr, DSym

        x86 = build_model("x86")
        profile = template_def_use(x86, DInstr("jmp", [DSym("target")]))
        assert profile is None  # symbolic domain refuses control flow
