"""E5 (paper Figure 5): the six mutations and the variant discipline."""


from repro.discovery import mutation as mut
from repro.discovery.asmmodel import DImm, DInstr, DMem, DReg
from tests.discovery.conftest import discovery_report, sample_named


def _instrs():
    return [
        DInstr("op1", [DReg("r1"), DImm(1)]),
        DInstr("op2", [DReg("r2"), DReg("r1")], labels=["L9"]),
        DInstr("op3", [DMem("paren", "r3", -4), DReg("r2")]),
    ]


class TestStructuralMutations:
    def test_delete_preserves_labels(self):
        out = mut.delete(_instrs(), 1)
        assert [i.mnemonic for i in out] == ["op1", "op3"]
        assert out[1].labels == ["L9"]

    def test_delete_last_keeps_labels_on_holder(self):
        instrs = _instrs()
        instrs[-1].labels = ["End"]
        out = mut.delete(instrs, 2)
        assert out[-1].mnemonic == ""
        assert out[-1].labels == ["End"]

    def test_move_before(self):
        out = mut.move(_instrs(), 2, 0)
        assert [i.mnemonic for i in out] == ["op3", "op1", "op2"]

    def test_move_after(self):
        out = mut.move(_instrs(), 0, 3)
        assert [i.mnemonic for i in out] == ["op2", "op3", "op1"]

    def test_copy_strips_labels(self):
        out = mut.copy(_instrs(), 1, 2)
        assert [i.mnemonic for i in out] == ["op1", "op2", "op3", "op2"]
        assert out[3].labels == []

    def test_rename_specific_occurrences(self):
        out = mut.rename(_instrs(), "r1", "r7", [(1, 1)])
        assert out[0].operands[0] == DReg("r1")  # untouched occurrence
        assert out[1].operands[1] == DReg("r7")

    def test_rename_all_renames_memory_bases_too(self):
        out = mut.rename_all(_instrs(), "r3", "r8")
        assert out[2].operands[0].base == "r8"

    def test_insert(self):
        filler = DInstr("nop", [])
        out = mut.insert(_instrs(), 1, [filler])
        assert [i.mnemonic for i in out] == ["op1", "nop", "op2", "op3"]

    def test_mutations_do_not_alias_the_original(self):
        original = _instrs()
        mut.delete(original, 0)
        mut.rename_all(original, "r1", "r9")
        assert original[0].operands[0] == DReg("r1")
        assert len(original) == 3


class TestMutationEngine:
    def test_failed_assembly_counts_as_failed_mutation(self, x86_report):
        engine = x86_report.engine
        sample = sample_named(x86_report, "int_add_a_bOPc")
        bogus = [DInstr("frobnicate", [DReg("%eax")])]
        assert not engine.succeeds_static(sample, sample.region + bogus)

    def test_noop_mutation_succeeds(self, report):
        engine = report.engine
        sample = sample_named(report, "int_add_a_bOPc")
        assert engine.succeeds_static(sample, sample.region)

    def test_clobber_values_avoid_degenerate_zero_one(self, report):
        engine = report.engine
        for _ in range(50):
            value = engine.clobber_value()
            assert value % (1 << engine.word_bits) not in (0, 1)

    def test_clobber_safe_registers_exclude_frame_bases(self, report):
        sample = sample_named(report, "int_add_a_bOPc")
        safe = report.engine.clobber_safe_registers(sample)
        bases = {
            op.base
            for instr in sample.region
            for op in instr.operands
            if hasattr(op, "base") and getattr(op, "base", None)
        }
        assert bases, "expected frame-relative operands"
        assert not bases & set(safe)

    def test_conditional_samples_get_flow_flipping_value_sets(self, report):
        engine = report.engine
        sample = sample_named(report, "int_cond_lt")
        sets = engine.value_sets(sample)
        assert len(sets) >= 2
        outputs = {vs.expected for vs in sets}
        assert len(outputs) >= 2  # both branch outcomes observed

    def test_deleting_the_branch_is_not_redundant(self, report):
        """A branch deletion matches the original under branch-taken
        values; the extra value sets (the variant discipline) catch it."""
        from repro.discovery import mutation as mut_mod

        engine = report.engine
        sample = sample_named(report, "int_cond_lt")
        branch_idx = None
        for i, instr in enumerate(sample.region):
            for op in instr.operands:
                if op.key()[0] == "sym":
                    branch_idx = i
        assert branch_idx is not None
        mutated = mut_mod.delete(sample.region, branch_idx)
        assert not engine.succeeds_static(sample, mutated)


class TestFunctionalRegisters:
    def test_hardwired_registers_fail_the_probe(self):
        for target, hardwired in (("sparc", "%g0"), ("mips", "$0"), ("alpha", "$31")):
            report = discovery_report(target)
            functional = report.engine.functional_registers()
            assert hardwired not in functional, target
            assert hardwired in report.syntax.registers

    def test_x86_and_vax_have_no_hardwired_registers(self):
        for target in ("x86", "vax"):
            report = discovery_report(target)
            functional = set(report.engine.functional_registers())
            assert functional == set(report.syntax.registers)
