"""Cost of crash-resume: what a kill -9 actually loses.

A full discovery run costs a few thousand target interactions; a
crash-durable run killed mid mutation analysis resumes from its newest
checkpoint generation and re-does only the unrealised suffix.  The
bench measures that resume cost in two regimes -- **cold cache** (the
resumed run re-probes the target for everything past the checkpoint)
and **warm cache** (a shared probe cache answers everything the crashed
run already asked) -- against the uninterrupted baseline, with the
determinism contract asserted on every leg: a resumed spec must be
bit-for-bit the uninterrupted one.

``BENCH_resume.json`` records wall seconds and remote-execution counts
for the baseline, the crashed prefix, and both resume regimes, plus the
checkpoint commit count and on-disk size of the run directory -- the
durability overhead a user pays for the privilege of being killable.
"""

import os
import time

import pytest

from benchmarks import _emit

from repro.discovery.driver import ArchitectureDiscovery
from repro.discovery.durable import DurableRun, machine_from_config
from repro.machines.crashes import CrashPlan, SimulatedCrash
from repro.machines.machine import RemoteMachine

LATENCY = float(os.environ.get("REPRO_BENCH_LATENCY", "0.002"))

TARGET = "vax"

CRASH_AT = "sample:mutation_analysis:2"


def _machine():
    return RemoteMachine(TARGET, latency=LATENCY)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _crash(rundir, cache):
    driver = ArchitectureDiscovery(
        _machine(),
        workers=1,
        cache=cache,
        run_dir=str(rundir),
        crash_plan=CrashPlan.parse(CRASH_AT),
    )
    with pytest.raises(SimulatedCrash):
        driver.run()
    return driver


def _resume(rundir, cache):
    run = DurableRun.open(str(rundir))
    machine, resilience = machine_from_config(run.config)
    machine.latency = LATENCY
    checkpoint, warnings = run.load_checkpoint()
    assert not warnings, warnings
    driver = ArchitectureDiscovery(
        machine,
        resilience=resilience,
        workers=1,
        cache=cache,
        run_dir=run,
        checkpoint_every=run.config["checkpoint_every"],
    )
    return driver.run(resume=checkpoint), run


def test_resume_cost_cold_vs_warm_cache(benchmark, tmp_path):
    cache = str(tmp_path / "cache")

    def run():
        # Uninterrupted baseline (also warms the shared probe cache).
        baseline_s, baseline = _timed(
            lambda: ArchitectureDiscovery(_machine(), workers=1, cache=cache).run()
        )
        ref_spec = baseline.spec.render_beg()

        # Cold resume: crash without the cache, resume without it --
        # every post-checkpoint probe pays the full round-trip again.
        cold_dir = tmp_path / "cold-run"
        crash_cold_s, _ = _timed(lambda: _crash(cold_dir, None))
        cold_resume_s, (cold_report, _run) = _timed(lambda: _resume(cold_dir, None))

        # Warm resume: the cache already holds every answer the crashed
        # run extracted, so the resumed suffix is (almost) probe-free.
        warm_dir = tmp_path / "warm-run"
        crash_warm_s, _ = _timed(lambda: _crash(warm_dir, cache))
        warm_resume_s, (warm_report, warm_run) = _timed(lambda: _resume(warm_dir, cache))

        disk = sum(p.stat().st_size for p in warm_run.directory.iterdir())
        return {
            "baseline_s": round(baseline_s, 3),
            "crash_prefix_cold_s": round(crash_cold_s, 3),
            "resume_cold_s": round(cold_resume_s, 3),
            "crash_prefix_warm_s": round(crash_warm_s, 3),
            "resume_warm_s": round(warm_resume_s, 3),
            "cold_executions": cold_report.machine_stats.executions,
            "warm_executions": warm_report.machine_stats.executions,
            "checkpoint_commits": warm_run.commits,
            "run_dir_bytes": disk,
            "latency_s": LATENCY,
            "crash_at": CRASH_AT,
            "cold_spec_identical": cold_report.spec.render_beg() == ref_spec,
            "warm_spec_identical": warm_report.spec.render_beg() == ref_spec,
        }

    payload = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(payload)
    _emit.record("resume", {"cold_vs_warm_cache": payload})

    # Identity is the contract; speed is the observation.
    assert payload["cold_spec_identical"]
    assert payload["warm_spec_identical"]
    # A warm resume answers probes locally: it must beat the cold one
    # on remote executions (the latency-proof metric, unlike seconds).
    assert payload["warm_executions"] <= payload["cold_executions"]
