"""The machine-description model and the generated back end's guards."""

import pytest

from repro.beg.codegen import BackendError, GeneratedBackend, _as_set, _intersect
from repro.beg.spec import MachineSpec, OpRule
from repro.discovery.asmmodel import DInstr, DReg, Slot
from repro.discovery.syntax import DiscoveredSyntax


class TestOpRule:
    def test_slots_used(self):
        rule = OpRule(
            "Plus",
            [DInstr("add", [Slot("left"), Slot("right"), Slot("result")])],
        )
        assert rule.slots_used() == {"left", "right", "result"}

    def test_literal_operands_not_slots(self):
        rule = OpRule("Mult", [DInstr("call", [DReg("%o0")])])
        assert rule.slots_used() == set()


class TestClassHelpers:
    def test_as_set(self):
        assert _as_set(None) is None
        assert _as_set([]) is None
        assert _as_set(["a", "b"]) == {"a", "b"}

    def test_intersect(self):
        assert _intersect(None, None) is None
        assert _intersect({"a", "b"}, None) == {"a", "b"}
        assert _intersect({"a", "b"}, {"b", "c"}) == {"b"}


class TestBackendGuards:
    def test_spec_without_frame_rejected(self):
        spec = MachineSpec(target="toy", syntax=DiscoveredSyntax())
        with pytest.raises(BackendError):
            GeneratedBackend(spec)


class TestRendering:
    def test_render_beg_smoke(self):
        syntax = DiscoveredSyntax()
        spec = MachineSpec(target="toy", syntax=syntax)
        spec.allocatable = ["r1", "r2"]
        spec.rules["Plus"] = OpRule(
            "Plus",
            [DInstr("add", [Slot("left"), Slot("right"), Slot("result")])],
            verified=True,
        )
        text = spec.render_beg()
        assert "TARGET toy" in text
        assert "add <left>, <right>, <result>" in text

    def test_summary_counts(self):
        spec = MachineSpec(target="toy", syntax=DiscoveredSyntax())
        spec.rules["Plus"] = OpRule("Plus", [])
        summary = spec.summary()
        assert summary["op_rules"] == ["Plus"]
        assert summary["branch_rules"] == []
