"""The remote-target façade the discovery unit talks to.

In the paper the user supplies "the internet address of the target
machine and the command-lines by which the C compiler, assembler, and
linker are invoked"; everything else happens over ``rsh``.
:class:`RemoteMachine` plays that role here.  Its surface is deliberately
narrow and opaque -- compile C to assembly text, assemble text to an
opaque object handle, link handles to an opaque executable handle,
execute -- so the discovery unit can only learn what the paper's system
could learn.

Invocation counters are kept per machine so benchmarks can report how
many target interactions (especially executions, the expensive mutation
currency) an analysis costs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import LinkerError
from repro.machines import alpha, m68k, mips, sparc, vax, x86
from repro.machines.assembler import Assembler
from repro.machines.executor import run as execute_program
from repro.machines.linker import link as link_objects
from repro.machines.runtime import sparc_runtime, standard_runtime

_TARGETS = {
    "x86": (x86.build_isa, standard_runtime),
    "mips": (mips.build_isa, standard_runtime),
    "sparc": (sparc.build_isa, sparc_runtime),
    "alpha": (alpha.build_isa, standard_runtime),
    "vax": (vax.build_isa, standard_runtime),
    "m68k": (m68k.build_isa, standard_runtime),
}


def target_names():
    """Names of all simulated targets."""
    return sorted(_TARGETS)


@dataclass(frozen=True)
class MachineModel:
    """A target's architectural model, without the remote-verb surface.

    This is what the spec verifier consumes: the ISA (instruction forms,
    registers, ABI, ``symbolic_step``) and the runtime builtins -- but no
    probe/compile machinery, so discovery's black-box discipline is
    untouched.
    """

    target: str
    isa: object
    runtime: dict


def build_model(target):
    """Build the :class:`MachineModel` for *target*."""
    if target not in _TARGETS:
        raise ValueError(f"unknown target {target!r}; have {target_names()}")
    build_isa, build_runtime = _TARGETS[target]
    return MachineModel(target=target, isa=build_isa(), runtime=build_runtime())


@dataclass(frozen=True)
class Toolchain:
    """The command lines of paper section 2, kept for fidelity of the
    user-facing story (they select which simulated tool runs)."""

    host: str = "kea.cs.auckland.ac.nz"
    cc: str = "cc -S -O %o %i"
    asm: str = "as -o %o %i"
    ld: str = "ld -o %o %i"


class ObjectHandle:
    """Opaque handle for an assembled object file."""

    __slots__ = ("_obj",)

    def __init__(self, obj):
        self._obj = obj

    def __repr__(self):
        return f"<object {self._obj.isa_name} {len(self._obj.instrs)} instrs>"


class ExecutableHandle:
    """Opaque handle for a linked program."""

    __slots__ = ("_program",)

    def __init__(self, program):
        self._program = program

    def __repr__(self):
        return f"<a.out {self._program.isa.name} {len(self._program.instrs)} instrs>"


@dataclass
class MachineStats:
    """Counts of target interactions (the paper's dominant cost)."""

    compilations: int = 0
    assemblies: int = 0
    assembly_errors: int = 0
    links: int = 0
    executions: int = 0

    def snapshot(self):
        return MachineStats(
            self.compilations,
            self.assemblies,
            self.assembly_errors,
            self.links,
            self.executions,
        )

    def add(self, other):
        """Accumulate another connection's counters (pool aggregation)."""
        self.compilations += other.compilations
        self.assemblies += other.assemblies
        self.assembly_errors += other.assembly_errors
        self.links += other.links
        self.executions += other.executions
        return self

    @property
    def total_verbs(self):
        """Remote round-trips: the paper's dominant cost."""
        return self.compilations + self.assemblies + self.links + self.executions


@dataclass
class _Session:
    stats: MachineStats = field(default_factory=MachineStats)


class RemoteMachine:
    """A simulated target host reachable "over the network".

    The four verbs mirror the tools the paper requires of a target:
    an assembly-producing C compiler, an assembler that flags illegal
    input, a linker, and remote execution.
    """

    def __init__(self, target, toolchain=None, fuel=500_000, latency=0.0):
        if target not in _TARGETS:
            raise ValueError(f"unknown target {target!r}; have {target_names()}")
        build_isa, build_runtime = _TARGETS[target]
        self.target = target
        self.toolchain = toolchain or Toolchain()
        self.fuel = fuel
        #: simulated network round-trip per remote verb, in seconds; the
        #: wait happens outside the simulated tool, so concurrent
        #: connections overlap it exactly as real rsh sessions would
        self.latency = latency
        self._isa = build_isa()
        self._runtime = build_runtime()
        self._assembler = Assembler(self._isa)
        self._codegen = None
        self.stats = MachineStats()

    def clone_connection(self, index=0):
        """Open another independent connection to the same target host.

        The clone has its own toolchain session state (assembler,
        code generator) and its own invocation counters, so concurrent
        use from one worker per connection is safe; aggregate counters
        with :meth:`MachineStats.add`.
        """
        return RemoteMachine(
            self.target, toolchain=self.toolchain, fuel=self.fuel, latency=self.latency
        )

    def _round_trip(self):
        if self.latency:
            time.sleep(self.latency)

    # -- the four remote verbs ----------------------------------------

    def compile_c(self, source, headers=None):
        """Run the native C compiler: C source text -> assembly text.

        ``headers`` maps include names to their text (for ``#include
        "init.h"`` in the paper's Figure 3 samples).
        Raises :class:`~repro.errors.CompilerError` on bad programs.
        """
        self.stats.compilations += 1
        self._round_trip()
        return self._get_codegen().compile(source, headers or {})

    def assemble(self, asm_text):
        """Run the native assembler; raises
        :class:`~repro.errors.AssemblerError` on illegal input."""
        self.stats.assemblies += 1
        self._round_trip()
        try:
            return ObjectHandle(self._assembler.assemble(asm_text))
        except Exception:
            self.stats.assembly_errors += 1
            raise

    def assembles_ok(self, asm_text):
        """Accept/reject probe: does the assembler take this program?"""
        from repro.errors import AssemblerError

        try:
            self.assemble(asm_text)
        except AssemblerError:
            return False
        return True

    def link(self, objects):
        """Run the native linker over object handles."""
        self.stats.links += 1
        self._round_trip()
        objs = []
        for handle in objects:
            if not isinstance(handle, ObjectHandle):
                raise LinkerError(f"not an object handle: {handle!r}")
            objs.append(handle._obj)
        return ExecutableHandle(link_objects(objs, self._isa, self._runtime))

    def execute(self, executable):
        """Run the program "remotely"; returns
        :class:`~repro.machines.executor.ExecResult` (never raises)."""
        self.stats.executions += 1
        self._round_trip()
        if not isinstance(executable, ExecutableHandle):
            raise LinkerError(f"not an executable handle: {executable!r}")
        return execute_program(executable._program, fuel=self.fuel)

    # -- conveniences --------------------------------------------------

    def run_c(self, sources, headers=None):
        """compile + assemble + link + execute a list of C sources."""
        objects = [self.assemble(self.compile_c(src, headers)) for src in sources]
        return self.execute(self.link(objects))

    def run_asm(self, asm_texts):
        """assemble + link + execute a list of assembly sources."""
        objects = [self.assemble(text) for text in asm_texts]
        return self.execute(self.link(objects))

    def _get_codegen(self):
        if self._codegen is None:
            from repro.cc import compiler_for

            self._codegen = compiler_for(self.target)
        return self._codegen


def make_machine(target, **kwargs):
    """Factory used throughout tests, examples and benchmarks."""
    return RemoteMachine(target, **kwargs)
